#include "opt/instr_opt.hh"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "mem/address_space.hh"
#include "support/logging.hh"

namespace shift
{

namespace
{

// Scratch registers / predicates owned by the instrumenter (mirrors
// src/core/instrument.cc; the allocator never hands these out).
constexpr int kT0 = reg::shiftTmp0;
constexpr int kT1 = reg::shiftTmp1;
constexpr int kT2 = reg::shiftTmp2;
constexpr int kT3 = reg::shiftTmp3;
constexpr int kPTag = 12;
constexpr int kPSrcNat = 13;
constexpr int kPSrcNat2 = 14;

/** Availability lattice for "whose tag address is in kT0". */
constexpr int kTop = -2;  ///< unreached: everything available
constexpr int kNone = -1; ///< nothing available

int
meetAvail(int a, int b)
{
    if (a == kTop)
        return b;
    if (b == kTop)
        return a;
    return a == b ? a : kNone;
}

// ---------------------------------------------------------------------
// Known-low-bits lattice for pass (f). Only the low 3 bits of a
// register matter: they decide addr&7 at byte-granularity bitmap
// accesses. mask says which of the 3 bits are known, value holds them.
// ---------------------------------------------------------------------

struct KnownBits
{
    uint8_t mask = 0;  ///< which of bits [0,3) are known
    uint8_t value = 0; ///< their values (subset of mask)

    bool
    operator==(const KnownBits &o) const
    {
        return mask == o.mask && value == o.value;
    }
};

KnownBits
kbExact(int64_t v)
{
    return {7, static_cast<uint8_t>(v & 7)};
}

KnownBits
kbMeet(KnownBits a, KnownBits b)
{
    KnownBits r;
    r.mask = a.mask & b.mask & static_cast<uint8_t>(~(a.value ^ b.value));
    r.value = a.value & r.mask;
    return r;
}

/** Contiguous known bits from bit 0 (what carries propagate through). */
int
kbPrefix(KnownBits a)
{
    int n = 0;
    while (n < 3 && (a.mask >> n) & 1)
        ++n;
    return n;
}

KnownBits
kbAdd(KnownBits a, KnownBits b)
{
    int k = std::min(kbPrefix(a), kbPrefix(b));
    KnownBits r;
    r.mask = static_cast<uint8_t>((1 << k) - 1);
    r.value = static_cast<uint8_t>((a.value + b.value) & r.mask);
    return r;
}

KnownBits
kbMul(KnownBits a, KnownBits b)
{
    int k = std::min(kbPrefix(a), kbPrefix(b));
    KnownBits r;
    r.mask = static_cast<uint8_t>((1 << k) - 1);
    r.value = static_cast<uint8_t>((a.value * b.value) & r.mask);
    return r;
}

KnownBits
kbShl(KnownBits a, int64_t s)
{
    if (s < 0)
        return {};
    if (s >= 3)
        return {7, 0}; // low 3 bits shifted out: all zero
    KnownBits r;
    r.mask = static_cast<uint8_t>(
        ((a.mask << s) | ((1 << s) - 1)) & 7);
    r.value = static_cast<uint8_t>((a.value << s) & r.mask);
    return r;
}

KnownBits
kbAnd(KnownBits a, KnownBits b)
{
    KnownBits r;
    // A result bit is known when both inputs are known, or either
    // input is a known zero.
    r.mask = static_cast<uint8_t>(
        ((a.mask & b.mask) | (a.mask & ~a.value) | (b.mask & ~b.value)) &
        7);
    r.value = static_cast<uint8_t>(a.value & b.value & r.mask);
    return r;
}

KnownBits
kbOr(KnownBits a, KnownBits b)
{
    KnownBits r;
    r.mask = static_cast<uint8_t>(
        ((a.mask & b.mask) | (a.mask & a.value) | (b.mask & b.value)) &
        7);
    r.value = static_cast<uint8_t>((a.value | b.value) & r.mask);
    return r;
}

KnownBits
kbXor(KnownBits a, KnownBits b)
{
    KnownBits r;
    r.mask = a.mask & b.mask;
    r.value = static_cast<uint8_t>((a.value ^ b.value) & r.mask);
    return r;
}

/** Per-register known-bits state for one program point. */
struct AlignState
{
    std::array<KnownBits, kNumGpr> regs;

    bool
    operator==(const AlignState &o) const
    {
        return regs == o.regs;
    }
};

AlignState
alignMeet(const AlignState &a, const AlignState &b)
{
    AlignState r;
    for (int i = 0; i < kNumGpr; ++i)
        r.regs[static_cast<size_t>(i)] =
            kbMeet(a.regs[static_cast<size_t>(i)],
                   b.regs[static_cast<size_t>(i)]);
    return r;
}

/**
 * Match the figure-4 tag-address fold at code[i..i+3]:
 *   extr kT0 = R, 61, 3 ; shl kT0 <<= regionShift ;
 *   extr kT1 = R, dataShift, ... ; or kT0 |= kT1
 * all Provenance::TagAddr. Reports the address register.
 */
bool
matchFold(const std::vector<Instr> &code, size_t i, int *addrReg)
{
    if (i + 4 > code.size())
        return false;
    const Instr *c = &code[i];
    if (c[0].op != Opcode::Extr || c[0].prov != Provenance::TagAddr ||
        c[0].qp != 0 || c[0].r1 != kT0 ||
        c[0].pos != static_cast<uint8_t>(kRegionShift) || c[0].len != 3)
        return false;
    int r = c[0].r2;
    if (c[1].op != Opcode::Shl || c[1].prov != Provenance::TagAddr ||
        c[1].r1 != kT0 || c[1].r2 != kT0 || !c[1].useImm)
        return false;
    if (c[2].op != Opcode::Extr || c[2].prov != Provenance::TagAddr ||
        c[2].r1 != kT1 || c[2].r2 != r)
        return false;
    if (c[3].op != Opcode::Or || c[3].prov != Provenance::TagAddr ||
        c[3].r1 != kT0 || c[3].r2 != kT0 || c[3].useImm ||
        c[3].r3 != kT1)
        return false;
    *addrReg = r;
    return true;
}

/**
 * Match a load-path bitmap check starting at code[i]. Byte
 * granularity is the 9-instruction two-tag-byte window assembly, word
 * granularity the 4-instruction tbit form. Both end by writing kPTag.
 * Only non-speculative checks match (ld.s checks defer differently).
 */
bool
matchLoadCheck(const std::vector<Instr> &code, size_t i, int *addrReg,
               int64_t *mask, size_t *len)
{
    if (i >= code.size())
        return false;
    const Instr &first = code[i];
    if (first.op != Opcode::Ld || first.prov != Provenance::TagMem ||
        first.origClass != OrigClass::ForLoad || first.spec ||
        first.r1 != kT1 || first.r2 != kT0 || first.size != 1)
        return false;
    // Word form: ld ; extr kT2=R,3,3 ; shr kT1>>=kT2 ; tbit kPTag.
    if (i + 4 <= code.size() && code[i + 1].op == Opcode::Extr) {
        const Instr *c = &code[i];
        if (c[1].r1 == kT2 && c[1].pos == 3 && c[1].len == 3 &&
            c[2].op == Opcode::Shr && c[2].r1 == kT1 &&
            c[2].r2 == kT1 && !c[2].useImm && c[2].r3 == kT2 &&
            c[3].op == Opcode::Tbit && c[3].p1 == kPTag &&
            c[3].p2 == 0 && c[3].r2 == kT1) {
            *addrReg = c[1].r2;
            *mask = -1; // single covered bit; size-independent
            *len = 4;
            return true;
        }
        return false;
    }
    // Byte form.
    if (i + 9 > code.size())
        return false;
    const Instr *c = &code[i];
    if (c[1].op != Opcode::Add || c[1].r1 != kT2 || c[1].r2 != kT0 ||
        !c[1].useImm || c[1].imm != 1)
        return false;
    if (c[2].op != Opcode::Ld || c[2].r1 != kT2 || c[2].r2 != kT2 ||
        c[2].spec || c[2].size != 1)
        return false;
    if (c[3].op != Opcode::Shl || c[3].r1 != kT2 || !c[3].useImm ||
        c[3].imm != 8)
        return false;
    if (c[4].op != Opcode::Or || c[4].r1 != kT1 || c[4].r2 != kT1 ||
        c[4].useImm || c[4].r3 != kT2)
        return false;
    if (c[5].op != Opcode::And || c[5].r1 != kT2 || !c[5].useImm ||
        c[5].imm != 7)
        return false;
    if (c[6].op != Opcode::Shr || c[6].r1 != kT1 || c[6].r2 != kT1 ||
        c[6].useImm || c[6].r3 != kT2)
        return false;
    if (c[7].op != Opcode::And || c[7].r1 != kT1 || c[7].r2 != kT1 ||
        !c[7].useImm)
        return false;
    if (c[8].op != Opcode::Cmp || c[8].rel != CmpRel::Ne ||
        c[8].p1 != kPTag || c[8].p2 != 0 || c[8].r2 != kT1 ||
        !c[8].useImm || c[8].imm != 0)
        return false;
    *addrReg = c[5].r2;
    *mask = c[7].imm;
    *len = 9;
    return true;
}

/**
 * Match a store-path bitmap update (mask build + RMW) starting at
 * code[i]: 13 instructions at byte granularity (two tag bytes), 7 at
 * word granularity. The leading tnat and the trailing real store are
 * not part of the unit.
 */
bool
matchStoreUpdate(const std::vector<Instr> &code, size_t i, int *addrReg,
                 int64_t *mask, size_t *len)
{
    if (i >= code.size())
        return false;
    const Instr &first = code[i];
    if (first.prov != Provenance::TagAddr ||
        first.origClass != OrigClass::ForStore)
        return false;
    bool byteGran;
    int r;
    if (first.op == Opcode::And && first.r1 == kT2 && first.useImm &&
        first.imm == 7) {
        byteGran = true;
        r = first.r2;
    } else if (first.op == Opcode::Extr && first.r1 == kT2 &&
               first.pos == 3 && first.len == 3) {
        byteGran = false;
        r = first.r2;
    } else {
        return false;
    }
    size_t n = byteGran ? 13 : 7;
    if (i + n > code.size())
        return false;
    const Instr *c = &code[i];
    if (c[1].op != Opcode::Movi || c[1].r1 != kT3)
        return false;
    if (c[2].op != Opcode::Shl || c[2].r1 != kT3 || c[2].r2 != kT3 ||
        c[2].useImm || c[2].r3 != kT2)
        return false;
    auto rmw = [&](size_t a, int addr) {
        return c[a].op == Opcode::Ld && c[a].r1 == kT1 &&
               c[a].r2 == addr && c[a].size == 1 && !c[a].spec &&
               c[a + 1].op == Opcode::Or && c[a + 1].qp == kPSrcNat &&
               c[a + 1].r1 == kT1 && c[a + 1].r3 == kT3 &&
               c[a + 2].op == Opcode::Andcm &&
               c[a + 2].qp == kPSrcNat2 && c[a + 2].r1 == kT1 &&
               c[a + 2].r3 == kT3 && c[a + 3].op == Opcode::St &&
               c[a + 3].r1 == addr && c[a + 3].r2 == kT1 &&
               c[a + 3].size == 1 && !c[a + 3].spill;
    };
    if (!rmw(3, kT0))
        return false;
    if (byteGran) {
        if (c[7].op != Opcode::Shr || c[7].r1 != kT3 || !c[7].useImm ||
            c[7].imm != 8)
            return false;
        if (c[8].op != Opcode::Add || c[8].r1 != kT2 ||
            c[8].r2 != kT0 || !c[8].useImm || c[8].imm != 1)
            return false;
        if (!rmw(9, kT2))
            return false;
    }
    *addrReg = r;
    *mask = c[1].imm;
    *len = n;
    return true;
}

/**
 * Match the spill/reload NaT purge of register X at code[i]:
 *   add kT3 = sp, -16 ; st8.spill [kT3] = X ; ld8 X = [kT3]
 * (or a single clrnat X under the ISA extension). Provenance is
 * whatever the emitting path used (Relax or TagReg).
 */
bool
matchClearNat(const std::vector<Instr> &code, size_t i, int *regOut,
              size_t *len)
{
    if (i >= code.size())
        return false;
    const Instr &first = code[i];
    if (first.prov == Provenance::Original)
        return false;
    if (first.op == Opcode::Clrnat) {
        *regOut = first.r1;
        *len = 1;
        return true;
    }
    if (i + 3 > code.size())
        return false;
    const Instr *c = &code[i];
    if (c[0].op != Opcode::Add || c[0].r1 != kT3 ||
        c[0].r2 != reg::sp || !c[0].useImm || c[0].imm != -16)
        return false;
    if (c[1].op != Opcode::St || !c[1].spill || c[1].r1 != kT3 ||
        c[1].size != 8)
        return false;
    if (c[2].op != Opcode::Ld || c[2].fill || c[2].spec ||
        c[2].r2 != kT3 || c[2].size != 8 || c[2].r1 != c[1].r2)
        return false;
    *regOut = c[1].r2;
    *len = 3;
    return true;
}

// ---------------------------------------------------------------------
// CFG.
// ---------------------------------------------------------------------

struct Block
{
    size_t begin = 0, end = 0; ///< [begin, end) instruction indices
    std::vector<int> succs;
    std::vector<int> preds;
};

struct Cfg
{
    std::vector<Block> blocks;

    void
    build(const std::vector<Instr> &code)
    {
        blocks.clear();
        if (code.empty())
            return;
        std::vector<size_t> leaders{0};
        std::map<int64_t, size_t> labelAt;
        for (size_t i = 0; i < code.size(); ++i) {
            const Instr &in = code[i];
            if (in.op == Opcode::Label) {
                leaders.push_back(i);
                labelAt[in.imm] = i;
            } else if (in.op == Opcode::Br || in.op == Opcode::Chk ||
                       in.op == Opcode::BrRet ||
                       in.op == Opcode::Halt) {
                leaders.push_back(i + 1);
            }
        }
        std::sort(leaders.begin(), leaders.end());
        leaders.erase(std::unique(leaders.begin(), leaders.end()),
                      leaders.end());
        while (!leaders.empty() && leaders.back() >= code.size())
            leaders.pop_back();

        std::map<size_t, int> blockAt;
        for (size_t b = 0; b < leaders.size(); ++b) {
            Block blk;
            blk.begin = leaders[b];
            blk.end = b + 1 < leaders.size() ? leaders[b + 1]
                                             : code.size();
            blockAt[blk.begin] = static_cast<int>(b);
            blocks.push_back(blk);
        }
        auto addEdge = [&](int from, int to) {
            blocks[from].succs.push_back(to);
            blocks[to].preds.push_back(from);
        };
        for (size_t b = 0; b < blocks.size(); ++b) {
            const Instr &last = code[blocks[b].end - 1];
            bool fallsThrough = true;
            if (last.op == Opcode::Br) {
                auto it = labelAt.find(last.imm);
                if (it != labelAt.end())
                    addEdge(static_cast<int>(b),
                            blockAt[it->second]);
                if (last.qp == 0)
                    fallsThrough = false;
            } else if (last.op == Opcode::Chk) {
                auto it = labelAt.find(last.imm);
                if (it != labelAt.end())
                    addEdge(static_cast<int>(b),
                            blockAt[it->second]);
            } else if (last.op == Opcode::BrRet ||
                       last.op == Opcode::Halt) {
                fallsThrough = false;
            }
            if (fallsThrough && b + 1 < blocks.size())
                addEdge(static_cast<int>(b), static_cast<int>(b + 1));
        }
    }
};

/** True for instructions that clobber every availability fact. */
bool
isBarrier(const Instr &in)
{
    return in.op == Opcode::BrCall || in.op == Opcode::BrCalli ||
           in.op == Opcode::Syscall;
}

// ---------------------------------------------------------------------
// Per-function optimizer.
// ---------------------------------------------------------------------

class FunctionOptimizer
{
  public:
    FunctionOptimizer(Function &fn, const OptimizerOptions &opt,
                      OptStats &stats)
        : fn_(fn), opt_(opt), stats_(stats)
    {}

    void
    run()
    {
        if (opt_.hoist) {
            // Bounded: each round inserts one preheader fold and the
            // opportunity test refuses folds already in place.
            while (hoistOne()) {
            }
        }
        if (opt_.cse)
            eliminateRedundantFolds();
        if (opt_.redundantChecks)
            eliminateRedundantChecks();
        if (opt_.deadUpdates)
            eliminateDeadUpdates();
        if (opt_.cleanRelax)
            eliminateCleanRelax();
        // Narrowing runs last: it breaks up the canonical unit shapes
        // the other passes (and the fusion matchers) key on.
        if (opt_.narrow)
            narrowAlignedAccesses();
    }

  private:
    Function &fn_;
    const OptimizerOptions &opt_;
    OptStats &stats_;

    /** Erase the marked instructions (never Labels). */
    void
    applyDeletions(const std::vector<char> &dead)
    {
        std::vector<Instr> kept;
        kept.reserve(fn_.code.size());
        for (size_t i = 0; i < fn_.code.size(); ++i) {
            if (dead[i]) {
                ++stats_.instrsRemoved;
                continue;
            }
            kept.push_back(std::move(fn_.code[i]));
        }
        fn_.code = std::move(kept);
    }

    // -----------------------------------------------------------------
    // (b) Loop-invariant fold hoisting.
    // -----------------------------------------------------------------

    /**
     * Find one natural loop whose body computes the fold of an
     * address register the body never redefines, and copy that fold
     * in front of the loop header so the CSE pass can delete the
     * in-loop copies. Returns true when an insertion happened.
     */
    bool
    hoistOne()
    {
        std::vector<Instr> &code = fn_.code;
        Cfg cfg;
        cfg.build(code);
        for (size_t h = 1; h < cfg.blocks.size(); ++h) {
            const Block &hd = cfg.blocks[h];
            if (hd.begin >= code.size() ||
                code[hd.begin].op != Opcode::Label)
                continue;
            int maxBack = -1;
            bool forwardOk = true;
            for (int p : hd.preds) {
                if (static_cast<size_t>(p) >= h)
                    maxBack = std::max(maxBack, p);
                else if (static_cast<size_t>(p) != h - 1)
                    forwardOk = false;
            }
            if (maxBack < 0 || !forwardOk)
                continue;
            // The preheader must actually fall through into the
            // header, or the inserted fold would never execute.
            const Instr &preLast = code[cfg.blocks[h - 1].end - 1];
            if ((preLast.op == Opcode::Br && preLast.qp == 0) ||
                preLast.op == Opcode::BrRet ||
                preLast.op == Opcode::Halt)
                continue;

            // Loop body: blocks [h, maxBack]. No calls/returns, no
            // side entries assumed beyond what CSE re-verifies.
            size_t bodyBegin = hd.begin;
            size_t bodyEnd = cfg.blocks[maxBack].end;
            int candidate = -1;
            Instr foldCopy[4];
            bool safe = true;
            for (size_t i = bodyBegin; i < bodyEnd && safe;) {
                const Instr &in = code[i];
                int r;
                if (matchFold(code, i, &r)) {
                    if (candidate == -1) {
                        candidate = r;
                        for (int k = 0; k < 4; ++k)
                            foldCopy[k] = code[i + k];
                    } else if (candidate != r) {
                        safe = false; // competing folds share kT0
                    }
                    i += 4;
                    continue;
                }
                if (isBarrier(in) || in.op == Opcode::BrRet)
                    safe = false;
                ++i;
            }
            if (!safe || candidate < 0)
                continue;
            // The body must never redefine the address register (by
            // ANY instruction: a relax strip/retaint of the pointer
            // changes its NaT, and a hoisted fold would freeze the
            // wrong NaT into kT0) nor clobber kT0 outside folds.
            for (size_t i = bodyBegin; i < bodyEnd && safe;) {
                int r;
                if (matchFold(code, i, &r)) {
                    i += 4;
                    continue;
                }
                int d = defReg(code[i]);
                if (d == candidate || d == kT0)
                    safe = false;
                ++i;
            }
            if (!safe)
                continue;
            // Refuse when the preheader already ends with this fold
            // (bounds the hoist loop; also what CSE will key on).
            size_t at = hd.begin; // insert just before the Label
            int r;
            if (at >= 4 && matchFold(code, at - 4, &r) &&
                r == candidate)
                continue;
            code.insert(code.begin() + static_cast<long>(at),
                        foldCopy, foldCopy + 4);
            stats_.instrsAdded += 4;
            ++stats_.foldsHoisted;
            return true;
        }
        return false;
    }

    // -----------------------------------------------------------------
    // (a) Tag-address CSE over the whole function.
    // -----------------------------------------------------------------

    /** Transfer one block; optionally record redundant folds. */
    int
    flowBlock(const std::vector<Instr> &code, const Block &blk,
              int avail, std::vector<char> *dead)
    {
        for (size_t i = blk.begin; i < blk.end;) {
            const Instr &in = code[i];
            int r;
            if (matchFold(code, i, &r)) {
                if (avail == r) {
                    if (dead) {
                        for (size_t k = i; k < i + 4; ++k)
                            (*dead)[k] = 1;
                        ++stats_.foldsElided;
                    }
                } else {
                    avail = r;
                }
                i += 4;
                continue;
            }
            if (isBarrier(in)) {
                avail = kNone;
            } else if (in.prov == Provenance::Original) {
                int d = defReg(in);
                if (d >= 0 && (d == avail || d == kT0))
                    avail = kNone;
            }
            ++i;
        }
        return avail;
    }

    void
    eliminateRedundantFolds()
    {
        std::vector<Instr> &code = fn_.code;
        Cfg cfg;
        cfg.build(code);
        if (cfg.blocks.empty())
            return;
        std::vector<int> in(cfg.blocks.size(), kTop);
        std::vector<int> out(cfg.blocks.size(), kTop);
        in[0] = kNone; // entry: nothing available
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t b = 0; b < cfg.blocks.size(); ++b) {
                int newIn = b == 0 ? kNone : kTop;
                for (int p : cfg.blocks[b].preds)
                    newIn = meetAvail(newIn, out[p]);
                // Unreached blocks keep TOP on both sides so their
                // code cannot contaminate reachable joins.
                int newOut =
                    newIn == kTop
                        ? kTop
                        : flowBlock(code, cfg.blocks[b], newIn,
                                    nullptr);
                if (newIn != in[b] || newOut != out[b]) {
                    in[b] = newIn;
                    out[b] = newOut;
                    changed = true;
                }
            }
        }
        std::vector<char> dead(code.size(), 0);
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            // kTop means unreached: deleting there is safe, but keep
            // the code honest and skip it.
            if (in[b] == kTop)
                continue;
            flowBlock(code, cfg.blocks[b], in[b], &dead);
        }
        applyDeletions(dead);
    }

    // -----------------------------------------------------------------
    // (c) Redundant bitmap-check elimination (block-local).
    // -----------------------------------------------------------------

    void
    eliminateRedundantChecks()
    {
        std::vector<Instr> &code = fn_.code;
        std::vector<char> dead(code.size(), 0);
        int checkedReg = kNone;
        int64_t checkedMask = 0;
        for (size_t i = 0; i < code.size();) {
            const Instr &in = code[i];
            int r;
            int64_t mask;
            size_t len;
            if (matchLoadCheck(code, i, &r, &mask, &len)) {
                if (checkedReg == r && checkedMask == mask) {
                    for (size_t k = i; k < i + len; ++k)
                        dead[k] = 1;
                    ++stats_.checksElided;
                } else {
                    checkedReg = r;
                    checkedMask = mask;
                }
                i += len;
                continue;
            }
            // Kills: the bitmap may change (any store), control may
            // join or leave, the pointer or kPTag may be redefined.
            if (in.op == Opcode::St || in.op == Opcode::Label ||
                in.op == Opcode::Br || in.op == Opcode::Chk ||
                in.op == Opcode::BrRet || in.op == Opcode::Halt ||
                isBarrier(in)) {
                checkedReg = kNone;
            } else if (in.op == Opcode::Cmp ||
                       in.op == Opcode::CmpNat ||
                       in.op == Opcode::Tnat ||
                       in.op == Opcode::Tbit) {
                if (in.p1 == kPTag || in.p2 == kPTag)
                    checkedReg = kNone;
            } else if (in.prov == Provenance::Original) {
                int d = defReg(in);
                if (d >= 0 && (d == checkedReg || d == kT0))
                    checkedReg = kNone;
            }
            ++i;
        }
        applyDeletions(dead);
    }

    // -----------------------------------------------------------------
    // (d) Dead bitmap-update elimination (block-local).
    // -----------------------------------------------------------------

    void
    eliminateDeadUpdates()
    {
        std::vector<Instr> &code = fn_.code;
        std::vector<char> dead(code.size(), 0);
        for (size_t i = 0; i < code.size();) {
            int r;
            int64_t mask;
            size_t len;
            if (!matchStoreUpdate(code, i, &r, &mask, &len)) {
                ++i;
                continue;
            }
            // Scan forward: is this exact tag slot overwritten before
            // anything can read the bitmap? Loads of any kind (tag
            // checks, reloads), stores other than a matching update,
            // control flow and pointer redefinitions all block it.
            bool overwritten = false;
            for (size_t j = i + len; j < code.size();) {
                int r2;
                int64_t mask2;
                size_t len2;
                if (matchStoreUpdate(code, j, &r2, &mask2, &len2)) {
                    if (r2 == r && mask2 == mask)
                        overwritten = true;
                    break;
                }
                const Instr &in = code[j];
                if (in.op == Opcode::Ld || in.op == Opcode::Label ||
                    in.op == Opcode::Br || in.op == Opcode::Chk ||
                    in.op == Opcode::BrRet || in.op == Opcode::Halt ||
                    isBarrier(in))
                    break;
                if (in.prov == Provenance::Original) {
                    int d = defReg(in);
                    if (d >= 0 && (d == r || d == kT0))
                        break;
                }
                ++j;
            }
            if (overwritten) {
                for (size_t k = i; k < i + len; ++k)
                    dead[k] = 1;
                ++stats_.updatesElided;
            }
            i += len;
        }
        applyDeletions(dead);
    }

    // -----------------------------------------------------------------
    // (e) NaT-cleanliness relax elimination.
    // -----------------------------------------------------------------

    /**
     * May-carry-NaT transfer for one instruction over a 64-bit dirty
     * mask. Sound over-approximation: anything not provably clean is
     * dirty. Plain loads architecturally CLEAR NaT (taint arrives via
     * the separate predicated retaint add, whose NaT-source operand
     * is dirty), so the instrumented sequences need no special cases.
     */
    static uint64_t
    flowDirty(const Instr &in, uint64_t dirty)
    {
        auto setDirty = [&](int r, bool d) {
            if (r == reg::zero)
                return; // hardwired clean
            uint64_t bit = 1ULL << (r & 63);
            if (in.qp != 0) // may be nullified: merge
                dirty |= d ? bit : 0;
            else
                dirty = d ? (dirty | bit) : (dirty & ~bit);
        };
        switch (in.op) {
          case Opcode::BrCall:
          case Opcode::BrCalli:
          case Opcode::Syscall:
            return ~1ULL; // callee may dirty anything but r0
          case Opcode::Movi:
          case Opcode::MovFromBr:
          case Opcode::MovFromUnat:
          case Opcode::Clrnat:
            setDirty(in.r1, false);
            return dirty;
          case Opcode::Setnat:
            setDirty(in.r1, true);
            return dirty;
          case Opcode::Ld:
            // ld.s defers faults into NaT; ld8.fill restores it.
            setDirty(in.r1, in.spec || in.fill);
            return dirty;
          default:
            break;
        }
        int d = defReg(in);
        if (d < 0)
            return dirty;
        bool anyDirty = false;
        forEachUse(in, [&](uint16_t r) {
            if (r != reg::zero && (dirty >> (r & 63)) & 1)
                anyDirty = true;
        });
        setDirty(d, anyDirty);
        return dirty;
    }

    void
    eliminateCleanRelax()
    {
        std::vector<Instr> &code = fn_.code;
        Cfg cfg;
        cfg.build(code);
        if (cfg.blocks.empty())
            return;
        // Optimistic fixpoint: entry all-dirty (arguments and every
        // callee-clobbered register may carry NaT), others clean
        // until proven otherwise.
        std::vector<uint64_t> in(cfg.blocks.size(), 0);
        std::vector<uint64_t> out(cfg.blocks.size(), 0);
        in[0] = ~1ULL;
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t b = 0; b < cfg.blocks.size(); ++b) {
                uint64_t newIn = b == 0 ? ~1ULL : 0;
                for (int p : cfg.blocks[b].preds)
                    newIn |= out[p];
                uint64_t st = newIn;
                for (size_t i = cfg.blocks[b].begin;
                     i < cfg.blocks[b].end; ++i)
                    st = flowDirty(code[i], st);
                if (newIn != in[b] || st != out[b]) {
                    in[b] = newIn;
                    out[b] = st;
                    changed = true;
                }
            }
        }

        std::vector<char> dead(code.size(), 0);
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            uint64_t dirty = in[b];
            for (size_t i = cfg.blocks[b].begin;
                 i < cfg.blocks[b].end; ++i) {
                tryElideAt(code, i, dirty, dead);
                dirty = flowDirty(code[i], dirty);
            }
        }
        applyDeletions(dead);
    }

    /**
     * If code[i] starts a deletable relax/purify unit for a provably
     * clean register, mark it dead. Two shapes:
     *  - compare relaxation half: tnat pN = X ; clearNat(X) ;
     *    ... cmp ... ; (pN) add X += natSrc — the whole half goes
     *    when X cannot carry NaT (the predicate could never fire);
     *  - zero-idiom purge: xor/sub r,r,r ; clearNat(r) — the purge
     *    goes when r was already clean (NaT hardware ORs r's own
     *    bits, so a clean input means a clean result).
     */
    void
    tryElideAt(const std::vector<Instr> &code, size_t i,
               uint64_t dirty, std::vector<char> &dead)
    {
        if (dead[i])
            return;
        auto isClean = [&](int r) {
            return r == reg::zero || !((dirty >> (r & 63)) & 1);
        };

        const Instr &in = code[i];
        // Compare-relax half.
        if (in.op == Opcode::Tnat && in.prov == Provenance::Relax &&
            in.origClass == OrigClass::ForCompare && in.p2 == 0 &&
            (in.p1 == kPSrcNat || in.p1 == kPSrcNat2) &&
            isClean(in.r2)) {
            int x = in.r2;
            int pred = in.p1;
            int cn;
            size_t cnLen;
            if (!matchClearNat(code, i + 1, &cn, &cnLen) || cn != x)
                return;
            // Find the paired retaint; nothing in between may write
            // the predicate (compiled code never touches p13/p14,
            // this guards hand-written assembly).
            size_t retaint = 0;
            for (size_t j = i + 1 + cnLen;
                 j < code.size() && j < i + 1 + cnLen + 16; ++j) {
                const Instr &c = code[j];
                if ((c.op == Opcode::Cmp || c.op == Opcode::CmpNat ||
                     c.op == Opcode::Tnat || c.op == Opcode::Tbit) &&
                    (c.p1 == pred || c.p2 == pred))
                    return;
                if (c.op == Opcode::Add && c.qp == pred &&
                    c.prov == Provenance::Relax &&
                    c.origClass == OrigClass::ForCompare &&
                    c.r1 == x && c.r2 == x && !c.useImm &&
                    c.r3 == reg::natSrc) {
                    retaint = j;
                    break;
                }
                if (isBranchLikeLocal(c))
                    return;
            }
            if (!retaint)
                return;
            for (size_t k = i; k < i + 1 + cnLen; ++k)
                dead[k] = 1;
            dead[retaint] = 1;
            ++stats_.relaxElided;
            return;
        }

        // Zero-idiom purge: the idiom itself stays (it is original
        // code), the emitted clearNat goes.
        if ((in.op == Opcode::Xor || in.op == Opcode::Sub) &&
            in.prov == Provenance::Original && !in.useImm &&
            in.r1 == in.r2 && in.r2 == in.r3 && isClean(in.r1)) {
            int cn;
            size_t cnLen;
            if (matchClearNat(code, i + 1, &cn, &cnLen) &&
                cn == in.r1 &&
                code[i + 1].prov == Provenance::TagReg) {
                for (size_t k = i + 1; k < i + 1 + cnLen; ++k)
                    dead[k] = 1;
                ++stats_.purifiesElided;
            }
        }
    }

    // -----------------------------------------------------------------
    // (f) Alignment-driven check/update narrowing.
    // -----------------------------------------------------------------

    /**
     * Known-low-bits transfer for one instruction. Clrnat/Setnat touch
     * only the NaT bit; anything not modelled makes its destination
     * unknown. Calls clobber everything but sp (callee-restored by the
     * ABI: every prologue/epilogue adjusts sp by a 16-aligned frame)
     * and the hardwired r0.
     */
    static void
    flowKnown(const Instr &in, AlignState &st)
    {
        auto get = [&](int r) -> KnownBits {
            if (r == reg::zero)
                return {7, 0};
            return st.regs[static_cast<size_t>(r & 63)];
        };
        auto src2 = [&]() {
            return in.useImm ? kbExact(in.imm) : get(in.r3);
        };

        switch (in.op) {
          case Opcode::BrCall:
          case Opcode::BrCalli:
          case Opcode::Syscall:
            for (int r = 1; r < kNumGpr; ++r) {
                if (r != reg::sp)
                    st.regs[static_cast<size_t>(r)] = {};
            }
            return;
          case Opcode::Setnat:
          case Opcode::Clrnat:
            return; // value bits unchanged
          default:
            break;
        }

        int d = defReg(in);
        if (d <= 0)
            return;
        KnownBits nb; // unknown unless proven below
        switch (in.op) {
          case Opcode::Movi:
            if (in.callee.empty())
                nb = kbExact(in.imm);
            break;
          case Opcode::Mov:
            nb = get(in.r2);
            break;
          case Opcode::Add:
            nb = kbAdd(get(in.r2), src2());
            break;
          case Opcode::Sub: {
            // Borrows ripple exactly like carries.
            KnownBits a = get(in.r2), b = src2();
            int k = std::min(kbPrefix(a), kbPrefix(b));
            nb.mask = static_cast<uint8_t>((1 << k) - 1);
            nb.value =
                static_cast<uint8_t>((a.value - b.value) & nb.mask);
            break;
          }
          case Opcode::Mul:
            nb = kbMul(get(in.r2), src2());
            break;
          case Opcode::Shladd:
            nb = kbAdd(kbShl(get(in.r2), in.pos), get(in.r3));
            break;
          case Opcode::Shl:
            if (in.useImm)
                nb = kbShl(get(in.r2), in.imm);
            break;
          case Opcode::And:
            nb = kbAnd(get(in.r2), src2());
            break;
          case Opcode::Or:
            nb = kbOr(get(in.r2), src2());
            break;
          case Opcode::Xor:
            nb = kbXor(get(in.r2), src2());
            break;
          case Opcode::Zxt:
          case Opcode::Sxt:
            // Sizes are whole bytes, so the low 3 bits survive.
            nb = get(in.r2);
            break;
          case Opcode::Extr:
            // Zero-extended field: bits at and above len are known 0;
            // a field starting at bit 0 also keeps the source's low
            // known bits.
            if (in.len < 3)
                nb.mask = static_cast<uint8_t>(7 & ~((1 << in.len) - 1));
            if (in.pos == 0) {
                uint8_t low = static_cast<uint8_t>(
                    in.len >= 3 ? 7 : (1 << in.len) - 1);
                KnownBits s = get(in.r2);
                nb.mask |= s.mask & low;
                nb.value = s.value & nb.mask;
            }
            break;
          default:
            break; // loads, movfrombr, ... : unknown
        }
        KnownBits &slot = st.regs[static_cast<size_t>(d & 63)];
        slot = in.qp != 0 ? kbMeet(slot, nb) : nb;
    }

    /**
     * Walk one block, applying the unit-aware transfer: a spill/reload
     * NaT purge preserves the purged register's value (only its NaT
     * changes), so it must not be modelled as a value-killing reload.
     * When `narrow` is set, byte-granularity check/update units are
     * narrowed in place using the state at their head.
     */
    AlignState
    alignFlowBlock(const std::vector<Instr> &code, const Block &blk,
                   AlignState st, std::vector<char> *dead)
    {
        auto maxLowOf = [&](int r) -> int {
            KnownBits kb = r == reg::zero
                               ? KnownBits{7, 0}
                               : st.regs[static_cast<size_t>(r & 63)];
            return (kb.value & kb.mask) | (7 & ~kb.mask);
        };
        auto exactZero = [&](int r) {
            KnownBits kb = r == reg::zero
                               ? KnownBits{7, 0}
                               : st.regs[static_cast<size_t>(r & 63)];
            return kb.mask == 7 && kb.value == 0;
        };
        auto bitsOf = [](int64_t mask) {
            int n = 0;
            while (mask > 0) {
                n += static_cast<int>(mask & 1);
                mask >>= 1;
            }
            return n;
        };

        for (size_t i = blk.begin; i < blk.end;) {
            int cn;
            size_t cnLen;
            if (matchClearNat(code, i, &cn, &cnLen) && cnLen == 3) {
                // add kT3 = sp, -16 defines kT3; the spill/reload pair
                // leaves the purged register's VALUE intact.
                flowKnown(code[i], st);
                i += cnLen;
                continue;
            }
            int r;
            int64_t mask;
            size_t len;
            if (dead && matchLoadCheck(code, i, &r, &mask, &len) &&
                len == 9) {
                int size = bitsOf(code[i + 7].imm);
                if (maxLowOf(r) + size <= 8) {
                    // Covered bits fit the low tag byte: the second
                    // tag-byte window (add/ld/shl/or) is dead.
                    for (size_t k = i + 1; k <= i + 4; ++k)
                        (*dead)[k] = 1;
                    if (exactZero(r)) {
                        // Bit index provably 0: the extraction and the
                        // variable shift are no-ops too.
                        (*dead)[i + 5] = 1;
                        (*dead)[i + 6] = 1;
                    }
                    ++stats_.checksNarrowed;
                }
                for (size_t k = i; k < i + len; ++k)
                    flowKnown(code[k], st);
                i += len;
                continue;
            }
            if (dead && matchStoreUpdate(code, i, &r, &mask, &len) &&
                len == 13) {
                int size = bitsOf(code[i + 1].imm);
                if (maxLowOf(r) + size <= 8) {
                    // Shifted mask fits the low tag byte: the high
                    // half (shr/add + RMW) ORs and clears nothing.
                    for (size_t k = i + 7; k <= i + 12; ++k)
                        (*dead)[k] = 1;
                    if (exactZero(r)) {
                        (*dead)[i] = 1;     // and kT2 = addr, 7
                        (*dead)[i + 2] = 1; // shl kT3 <<= kT2 (by 0)
                    }
                    ++stats_.updatesNarrowed;
                }
                for (size_t k = i; k < i + len; ++k)
                    flowKnown(code[k], st);
                i += len;
                continue;
            }
            flowKnown(code[i], st);
            ++i;
        }
        return st;
    }

    void
    narrowAlignedAccesses()
    {
        std::vector<Instr> &code = fn_.code;
        Cfg cfg;
        cfg.build(code);
        if (cfg.blocks.empty())
            return;

        // Entry facts are ABI invariants: sp is 16-aligned (the loader
        // starts it 128-aligned and frames are 16-aligned) and r0 is 0.
        AlignState entry;
        entry.regs[reg::zero] = {7, 0};
        entry.regs[reg::sp] = {7, 0};

        size_t n = cfg.blocks.size();
        std::vector<AlignState> in(n), out(n);
        std::vector<char> reached(n, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t b = 0; b < n; ++b) {
                AlignState newIn;
                bool any = b == 0;
                if (any)
                    newIn = entry;
                for (int p : cfg.blocks[b].preds) {
                    if (!reached[static_cast<size_t>(p)])
                        continue;
                    newIn = any ? alignMeet(
                                      newIn, out[static_cast<size_t>(p)])
                                : out[static_cast<size_t>(p)];
                    any = true;
                }
                if (!any)
                    continue; // unreached so far
                AlignState newOut =
                    alignFlowBlock(code, cfg.blocks[b], newIn, nullptr);
                if (!reached[b] || !(newIn == in[b]) ||
                    !(newOut == out[b])) {
                    reached[b] = 1;
                    in[b] = std::move(newIn);
                    out[b] = std::move(newOut);
                    changed = true;
                }
            }
        }

        std::vector<char> dead(code.size(), 0);
        for (size_t b = 0; b < n; ++b) {
            if (!reached[b])
                continue;
            alignFlowBlock(code, cfg.blocks[b], in[b], &dead);
        }
        applyDeletions(dead);
    }

    static bool
    isBranchLikeLocal(const Instr &in)
    {
        return in.op == Opcode::Label || in.op == Opcode::Br ||
               in.op == Opcode::Chk || in.op == Opcode::BrRet ||
               in.op == Opcode::Halt || isBarrier(in);
    }
};

} // namespace

OptStats
optimizeInstrumentation(Program &program, const OptimizerOptions &options)
{
    OptStats stats;
    stats.sizeBefore = program.staticInstrCount();
    if (options.enable) {
        for (Function &fn : program.functions) {
            FunctionOptimizer fo(fn, options, stats);
            fo.run();
        }
    }
    stats.sizeAfter = program.staticInstrCount();
    return stats;
}

} // namespace shift
