/**
 * @file
 * Post-instrumentation optimizer for the SHIFT taint sequences.
 *
 * The instrumenter (src/core/instrument.cc) emits its bitmap code
 * peephole-style: every instrumented load/store recomputes the
 * figure-4 tag-address fold, every compare is relaxed, whether or not
 * the work is redundant. The paper's own section 6.4 observes that
 * "reusing the computation code for some adjacent data" is where a
 * compiler optimization would go; this pass is that optimization,
 * generalized from the instrumenter's single-basic-block cache to a
 * whole-function dataflow over the allocated RTL:
 *
 *  (a) tag-address CSE: a forward "which register's tag address is
 *      sitting in kT0" analysis (meet = must-agree) deletes folds
 *      whose result is already available on every path;
 *  (b) loop-invariant fold hoisting: when a natural loop computes the
 *      fold of an address register the loop never redefines, a copy
 *      is placed in the fall-through preheader so (a) can delete the
 *      in-loop copies;
 *  (c) redundant bitmap-check elimination: a second load through an
 *      unmodified address register inside the same block re-reads tag
 *      bits that cannot have changed (no intervening store, call or
 *      join); the 4/9-instruction check collapses onto the kPTag
 *      predicate the first check computed;
 *  (d) dead bitmap-update elimination: a store whose tag slot is
 *      provably overwritten by the next store before any load can
 *      observe it drops its read-modify-write;
 *  (e) NaT-cleanliness relax elimination: a may-carry-NaT dataflow
 *      (union at joins, loads/calls/spec/fill produce dirt, movi and
 *      plain ALU over clean sources stay clean) proves registers that
 *      can never hold a NaT; compare relaxation and zero-idiom
 *      purification of provably clean registers is dropped;
 *  (f) alignment-driven check/update narrowing: a known-low-bits
 *      dataflow over addresses (movi immediates are exact post-link,
 *      globals and frames are 8-aligned, shladd/add ripple known bits
 *      through, sp stays aligned across calls by ABI) bounds addr&7 at
 *      every byte-granularity bitmap access. When (addr&7)+size <= 8
 *      the covered tag bits provably fit the low tag byte, so the
 *      straddle machinery — the second tag-byte window of the
 *      9-instruction check (4 instructions) and the high-half RMW of
 *      the 13-instruction update (6 instructions) — is deleted; when
 *      addr&7 is exactly 0 the bit-index extraction and the variable
 *      shifts are no-ops and go too (check 9 -> 3, update 13 -> 5).
 *      This is the big one for byte granularity: every size-1 access
 *      narrows unconditionally (a one-bit field cannot straddle), and
 *      scaled array accesses narrow through the shladd alignment.
 *
 * The invalidation model is conservative: availability dies on any
 * original redefinition of the address register or of the kT0 scratch
 * itself, on calls, returns, syscalls and indirect branches, and at
 * control-flow joins where predecessors disagree. Taint SEMANTICS are
 * preserved exactly — the differential suite (tests/test_opt.cc)
 * checks bit-identical taint bitmaps, verdicts and final memory with
 * the optimizer on and off. The one permitted divergence, shared with
 * the instrumenter's own reuseTagAddr cache, is the program counter
 * at which an already-doomed run faults: reusing a fold computed
 * before a pointer's taint was restored moves the NaT-consumption
 * fault from the tag access to the original access. The policy
 * verdict is identical (see docs/INSTR-OPT.md).
 */

#ifndef SHIFT_OPT_INSTR_OPT_HH
#define SHIFT_OPT_INSTR_OPT_HH

#include <cstdint>

#include "isa/program.hh"

namespace shift
{

/** Which optimizer passes run. */
struct OptimizerOptions
{
    /** Master switch; off leaves the program untouched. */
    bool enable = false;

    bool cse = true;             ///< (a) tag-address CSE
    bool hoist = true;           ///< (b) loop-invariant fold hoisting
    bool redundantChecks = true; ///< (c) repeated-load check removal
    bool deadUpdates = true;     ///< (d) overwritten-update removal
    bool cleanRelax = true;      ///< (e) NaT-cleanliness relax removal
    bool narrow = true;          ///< (f) alignment-driven narrowing
};

/** Static counts from one optimizer run. */
struct OptStats
{
    uint64_t foldsHoisted = 0;   ///< folds copied into preheaders
    uint64_t foldsElided = 0;    ///< redundant folds deleted
    uint64_t checksElided = 0;   ///< bitmap checks deleted
    uint64_t updatesElided = 0;  ///< bitmap RMW updates deleted
    uint64_t relaxElided = 0;    ///< compare-relax halves deleted
    uint64_t purifiesElided = 0; ///< zero-idiom purges deleted
    uint64_t checksNarrowed = 0; ///< checks with straddle window cut
    uint64_t updatesNarrowed = 0; ///< updates with high-half RMW cut
    uint64_t instrsRemoved = 0;  ///< static instructions deleted
    uint64_t instrsAdded = 0;    ///< static instructions inserted
    uint64_t sizeBefore = 0;     ///< static size going in
    uint64_t sizeAfter = 0;      ///< static size coming out
};

/**
 * Optimize an instrumented program in place. Runs after
 * instrumentProgram; a no-op (with honest sizeBefore/After) when
 * options.enable is false. Safe to run on a program that was never
 * instrumented — no sequence matches, nothing changes.
 */
OptStats optimizeInstrumentation(Program &program,
                                 const OptimizerOptions &options);

} // namespace shift

#endif // SHIFT_OPT_INSTR_OPT_HH
