/**
 * @file
 * Tables 1 & 2: the policy catalogue and the security evaluation.
 *
 * Runs every attack scenario with its exploit input (must be detected
 * by the expected policy) and its benign input (must raise no alert),
 * at both granularities, and prints the paper's table 2. Table 1 is
 * printed as the active policy catalogue.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/attacks.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

void
printTable1()
{
    struct PolicyDoc
    {
        const char *id;
        const char *attack;
        const char *description;
    };
    static const PolicyDoc kDocs[] = {
        {"H1", "Directory Traversal",
         "Tainted data cannot be used as an absolute file path"},
        {"H2", "Directory Traversal",
         "Tainted data cannot traverse out of the document root"},
        {"H3", "SQL Injection",
         "Tainted SQL metacharacters cannot reach a SQL string"},
        {"H4", "Command Injection",
         "Tainted shell metacharacters cannot reach system()"},
        {"H5", "Cross Site Scripting", "No tainted script tag"},
        {"L1", "De-referencing tainted pointer",
         "Tainted data cannot be used as a load address"},
        {"L2", "Format string vulnerability",
         "Tainted data cannot be used as a store address"},
        {"L3", "Modify critical CPU state",
         "Tainted data cannot reach branch/special registers"},
    };
    std::printf("\n=== Table 1: security policies ===\n");
    std::printf("%-4s %-30s %s\n", "id", "attack class", "description");
    benchutil::rule(100);
    for (const PolicyDoc &doc : kDocs)
        std::printf("%-4s %-30s %s\n", doc.id, doc.attack,
                    doc.description);
    std::printf("\n");
}

void
printTable2()
{
    std::printf("=== Table 2: security evaluation (byte & word "
                "tracking) ===\n");
    std::printf("%-14s %-22s %-5s %-24s %-8s %-9s %-6s\n", "CVE#",
                "program", "lang", "attack type", "policy",
                "detected?", "FP?");
    benchutil::rule(100);

    int detected = 0;
    int falsePositives = 0;
    for (const AttackScenario &scenario : attackScenarios()) {
        bool det = true;
        bool fp = false;
        for (Granularity g : {Granularity::Byte, Granularity::Word}) {
            AttackRun ex = runAttackScenario(scenario, true, g);
            AttackRun be = runAttackScenario(scenario, false, g);
            det = det && ex.detected;
            fp = fp || be.falsePositive;
        }
        detected += det;
        falsePositives += fp;
        std::printf("%-14s %-22s %-5s %-24s %-8s %-9s %-6s\n",
                    scenario.cve.c_str(), scenario.program.c_str(),
                    scenario.language.c_str(),
                    scenario.attackType.c_str(),
                    scenario.expectedPolicy.c_str(),
                    det ? "Yes" : "NO", fp ? "YES" : "no");
        registerMetricRow("table2/" + scenario.name,
                          {{"detected", det ? 1.0 : 0.0},
                           {"false_positive", fp ? 1.0 : 0.0}});
    }
    benchutil::rule(100);
    std::printf("detected %d/8 attacks, %d false positives "
                "(paper: 8/8, 0)\n\n",
                detected, falsePositives);
    registerMetricRow("table2/summary",
                      {{"detected", double(detected)},
                       {"false_positives", double(falsePositives)}});
}

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
