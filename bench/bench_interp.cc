/**
 * @file
 * Host-side interpreter throughput (MIPS) on the SPEC and httpd
 * workloads — the trajectory metric for interpreter perf work.
 *
 * Unlike the figure benches, which report simulated-cycle ratios, this
 * harness measures how fast the host executes the simulation: dynamic
 * (simulated) instructions divided by host wall-clock seconds, for the
 * legacy reference stepper and the predecoded engine side by side. It
 * verifies on every row that the two engines agree bit-for-bit on
 * simulated cycles, instruction counts and alerts (a wrong fast
 * interpreter is worthless), prints the table, registers the metrics
 * as google-benchmark counters, and writes BENCH_interp.json so future
 * PRs can chart the trajectory.
 *
 * `--smoke` runs a minimal subset once (two SPEC kernels + a small
 * httpd run) and exits non-zero when the predecoded engine fails to
 * clear 1.2x the legacy throughput — a cheap CI tripwire for >20%
 * regressions of the predecode advantage (see the perf-smoke target).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

struct Measurement
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    size_t alerts = 0;
    double seconds = 0;

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

struct Row
{
    std::string name;
    Measurement legacy;
    Measurement pre;

    double speedup() const
    {
        return legacy.mips() > 0 ? pre.mips() / legacy.mips() : 0;
    }
};

/**
 * Repeats per engine per workload; the minimum host time wins. On a
 * shared host a single run is hostage to whatever else is scheduled,
 * and the minimum over a few runs converges on the undisturbed cost.
 * `--smoke` drops to one repeat — the tripwire trades precision for
 * cheapness.
 */
int repeats = 3;

/**
 * Minimum simulated instructions one timed sample must retire; short
 * workloads are re-run back to back until the floor is met (see
 * benchutil::runsForInstructionFloor — this is what un-skewed the
 * httpd row, which retires ~57k instructions per smoke serve).
 */
uint64_t minSampleInstrs = 4'000'000;

/**
 * `fn` runs one workload and returns a SpecRun/HttpdRun: a RunResult
 * in .result plus .runSeconds, the host time spent inside
 * Machine::run() alone. Using that (rather than timing the whole
 * call) excludes the compile/instrument/setup pipeline, which is
 * identical for both engines and would otherwise dilute the
 * interpreter ratio on short workloads.
 *
 * The first run is an untimed warm-up (host page cache, allocator
 * arenas, branch predictors) that also tells us the per-run
 * instruction count for the sample floor; each timed sample then
 * aggregates enough runs to retire minSampleInstrs, and the minimum
 * per-run time across samples wins.
 */
template <typename Fn>
Measurement
timeRun(Fn &&fn)
{
    Measurement m;
    auto checkOk = [](const RunResult &result) {
        if (!result.ok()) {
            std::fprintf(stderr, "bench_interp: run failed (%s: %s)\n",
                         faultKindName(result.fault.kind),
                         result.fault.detail.c_str());
            std::exit(1);
        }
    };
    auto warm = fn();
    checkOk(warm.result);
    m.instructions = warm.result.instructions;
    m.cycles = warm.result.cycles;
    m.alerts = warm.result.alerts.size();
    int runsPerSample = benchutil::runsForInstructionFloor(
        m.instructions, minSampleInstrs);
    for (int rep = 0; rep < repeats; ++rep) {
        double sampleSeconds = 0;
        for (int i = 0; i < runsPerSample; ++i) {
            auto run = fn();
            checkOk(run.result);
            // The simulation is deterministic; a repeat that
            // disagrees with itself is a bug, not noise.
            if (run.result.instructions != m.instructions ||
                run.result.cycles != m.cycles ||
                run.result.alerts.size() != m.alerts) {
                std::fprintf(stderr, "bench_interp: NON-DETERMINISTIC "
                                     "repeat\n");
                std::exit(1);
            }
            sampleSeconds += run.runSeconds;
        }
        double perRun = sampleSeconds / runsPerSample;
        if (rep == 0 || perRun < m.seconds)
            m.seconds = perRun;
    }
    return m;
}

/** Abort loudly when the engines disagree — speed without fidelity. */
void
checkEquivalent(const Row &row)
{
    if (row.legacy.cycles != row.pre.cycles ||
        row.legacy.instructions != row.pre.instructions ||
        row.legacy.alerts != row.pre.alerts) {
        std::fprintf(stderr,
                     "bench_interp: ENGINE MISMATCH on %s: legacy "
                     "{cycles=%llu instrs=%llu alerts=%zu} vs "
                     "predecoded {cycles=%llu instrs=%llu alerts=%zu}\n",
                     row.name.c_str(),
                     (unsigned long long)row.legacy.cycles,
                     (unsigned long long)row.legacy.instructions,
                     row.legacy.alerts,
                     (unsigned long long)row.pre.cycles,
                     (unsigned long long)row.pre.instructions,
                     row.pre.alerts);
        std::exit(1);
    }
}

Row
measureSpec(const SpecKernel &kernel)
{
    Row row;
    row.name = "spec/" + kernel.shortName;
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    config.taintInput = true;

    config.engine = ExecEngine::Legacy;
    row.legacy = timeRun([&] { return runSpecKernel(kernel, config); });
    config.engine = ExecEngine::Predecoded;
    row.pre = timeRun([&] { return runSpecKernel(kernel, config); });
    checkEquivalent(row);
    return row;
}

Row
measureHttpd(int requests)
{
    Row row;
    row.name = "httpd";
    HttpdConfig config;
    config.mode = TrackingMode::Shift;
    config.requests = requests;

    config.engine = ExecEngine::Legacy;
    row.legacy = timeRun([&] { return runHttpd(config); });
    config.engine = ExecEngine::Predecoded;
    row.pre = timeRun([&] { return runHttpd(config); });
    checkEquivalent(row);
    return row;
}

void
writeJson(const std::vector<Row> &rows, double geomeanSpeedup)
{
    FILE *f = std::fopen("BENCH_interp.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_interp: cannot write "
                             "BENCH_interp.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"instructions\": %llu, "
            "\"mips_legacy\": %.2f, \"mips_predecoded\": %.2f, "
            "\"speedup\": %.3f}%s\n",
            r.name.c_str(), (unsigned long long)r.pre.instructions,
            r.legacy.mips(), r.pre.mips(), r.speedup(),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"geomean_speedup\": %.3f\n}\n",
                 geomeanSpeedup);
    std::fclose(f);
    std::printf("wrote BENCH_interp.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    if (smoke)
        repeats = 1;

    std::printf("\n=== Interpreter throughput: host MIPS, legacy vs "
                "predecoded engine ===\n");
    std::printf("%-14s %10s %12s %14s %9s\n", "workload", "Minstrs",
                "MIPS legacy", "MIPS predecode", "speedup");
    benchutil::rule(64);

    std::vector<Row> rows;
    size_t specCount = smoke ? 2 : specKernels().size();
    for (size_t i = 0; i < specCount; ++i)
        rows.push_back(measureSpec(specKernels()[i]));
    rows.push_back(measureHttpd(smoke ? 5 : 50));

    std::vector<double> speedups;
    for (const Row &r : rows) {
        std::printf("%-14s %10.1f %12.1f %14.1f %8.2fx\n",
                    r.name.c_str(), double(r.pre.instructions) / 1e6,
                    r.legacy.mips(), r.pre.mips(), r.speedup());
        speedups.push_back(r.speedup());
        registerMetricRow("interp/" + r.name,
                          {{"mips_legacy", r.legacy.mips()},
                           {"mips_predecoded", r.pre.mips()},
                           {"speedup_X", r.speedup()}});
    }
    benchutil::rule(64);
    double gm = geomean(speedups);
    std::printf("%-14s %37s %8.2fx\n", "geo.mean", "", gm);
    std::printf("(engines verified cycle- and alert-identical on every "
                "row)\n\n");

    registerMetricRow("interp/geomean", {{"speedup_X", gm}});
    writeJson(rows, gm);

    if (smoke && gm < 1.2) {
        std::fprintf(stderr,
                     "perf-smoke FAIL: predecoded engine only %.2fx "
                     "legacy throughput (floor 1.2x)\n",
                     gm);
        return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
