/**
 * @file
 * Taint-clean fast-path payoff (see docs/FAST-PATH.md): host time to
 * serve the same workload with the dual-version superblock tier off
 * (the always-instrumented fused engine) and on.
 *
 * Unlike bench_interp, the two configurations here do NOT simulate the
 * same instruction stream — eliding instrumentation work on clean data
 * is the whole point, so simulated instruction counts drop with the
 * tier on. The comparable quantity is host seconds inside
 * Machine::run() for the same served workload; the table reports that
 * speedup plus the fast tier's own health metrics (superblock hit
 * rate, deopt count). Every row verifies the security-relevant
 * observables are identical both ways: exit status, alert count and
 * policies, and (for httpd) that every response carried the file.
 *
 * httpd is measured twice: serving clean requests (taintNetwork off —
 * the paper's figure-6 regime, where the server code never touches
 * tainted data) and serving the same connections with request bytes
 * tainted, where the parsing loops deopt and the speedup is bounded
 * by the workload's taint share. `--smoke` runs both httpd rows and
 * exits non-zero when the fast path clears less than 1.3x the
 * instrumented engine on clean requests, or when the clean-request
 * superblock hit rate falls below 90% — the perf-smoke-fastpath CI
 * tripwire.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

struct Measurement
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    size_t alerts = 0;
    double seconds = 0;
    uint64_t fastEntered = 0;
    uint64_t fastDeopts = 0;

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

struct Row
{
    std::string name;
    Measurement off; ///< fast path off: the PR 3 fused engine
    Measurement on;  ///< fast path on

    /** Host-time speedup serving the identical workload. */
    double speedup() const
    {
        return on.seconds > 0 ? off.seconds / on.seconds : 0;
    }

    /** Fraction of fast-block entries that survived their probes. */
    double hitRate() const
    {
        return on.fastEntered > 0
                   ? 1.0 - double(on.fastDeopts) / double(on.fastEntered)
                   : 0;
    }
};

/** Repeats per configuration; minimum host time wins (see
 * bench_interp for why). */
int repeats = 3;

/** `--stats`: dump the fastpath.* counters of each tier-on run, so a
 * regression in coverage (cold bails, per-block deopt hot spots) can
 * be localised without a debugger. */
bool dumpStats = false;

template <typename Fn>
Measurement
timeRun(Fn &&fn, bool expectAlerts)
{
    Measurement m;
    for (int rep = 0; rep < repeats; ++rep) {
        auto run = fn();
        const RunResult &result = run.result;
        bool ok = expectAlerts ? result.killedByPolicy : result.ok();
        if (!ok) {
            std::fprintf(stderr, "bench_fastpath: run failed (%s: %s)\n",
                         faultKindName(result.fault.kind),
                         result.fault.detail.c_str());
            std::exit(1);
        }
        if (rep == 0) {
            m.instructions = result.instructions;
            m.cycles = result.cycles;
            m.alerts = result.alerts.size();
            m.seconds = run.runSeconds;
            m.fastEntered = result.stats.get("fastpath.entered");
            m.fastDeopts = result.stats.get("fastpath.deopts");
            if (dumpStats && m.fastEntered) {
                for (const std::string &name : result.stats.names()) {
                    if (name.rfind("fastpath.", 0) == 0)
                        std::printf("  %-60s %llu\n", name.c_str(),
                                    (unsigned long long)result.stats
                                        .get(name));
                }
            }
            continue;
        }
        if (result.instructions != m.instructions ||
            result.cycles != m.cycles ||
            result.alerts.size() != m.alerts) {
            std::fprintf(stderr,
                         "bench_fastpath: NON-DETERMINISTIC repeat\n");
            std::exit(1);
        }
        if (run.runSeconds < m.seconds)
            m.seconds = run.runSeconds;
    }
    return m;
}

/** Security observables must not move when the tier turns on. */
void
checkIdentity(const Row &row)
{
    if (row.off.alerts != row.on.alerts) {
        std::fprintf(stderr,
                     "bench_fastpath: VERDICT MISMATCH on %s: "
                     "%zu alerts off vs %zu on\n",
                     row.name.c_str(), row.off.alerts, row.on.alerts);
        std::exit(1);
    }
    if (row.on.instructions > row.off.instructions) {
        std::fprintf(stderr,
                     "bench_fastpath: fast path EXECUTED MORE on %s\n",
                     row.name.c_str());
        std::exit(1);
    }
}

Row
measureHttpd(const std::string &name, int requests, bool taintRequests)
{
    Row row;
    row.name = name;
    HttpdConfig config;
    config.mode = TrackingMode::Shift;
    config.requests = requests;
    config.taintRequests = taintRequests;
    // Both sides run the predecoded fused engine; the only variable is
    // the dual-version superblock tier.
    config.engine = ExecEngine::Predecoded;

    auto serve = [&] {
        HttpdRun run = runHttpd(config);
        if (!run.responsesOk) {
            std::fprintf(stderr,
                         "bench_fastpath: bad responses on %s\n",
                         name.c_str());
            std::exit(1);
        }
        return run;
    };
    config.fastPath = false;
    row.off = timeRun(serve, false);
    config.fastPath = true;
    row.on = timeRun(serve, false);
    checkIdentity(row);
    return row;
}

Row
measureSpec(const SpecKernel &kernel)
{
    Row row;
    row.name = "spec/" + kernel.shortName;
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    config.taintInput = true;
    config.engine = ExecEngine::Predecoded;

    config.fastPath = false;
    row.off = timeRun([&] { return runSpecKernel(kernel, config); },
                      false);
    config.fastPath = true;
    row.on = timeRun([&] { return runSpecKernel(kernel, config); },
                     false);
    checkIdentity(row);
    return row;
}

void
writeJson(const std::vector<Row> &rows, double httpdSpeedup,
          double httpdHitRate)
{
    FILE *f = std::fopen("BENCH_fastpath.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_fastpath: cannot write "
                             "BENCH_fastpath.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", "
            "\"mips_instrumented\": %.2f, \"mips_fastpath\": %.2f, "
            "\"host_speedup\": %.3f, \"hit_rate\": %.4f, "
            "\"fast_entered\": %llu, \"deopts\": %llu, "
            "\"instrs_instrumented\": %llu, \"instrs_fastpath\": "
            "%llu}%s\n",
            r.name.c_str(), r.off.mips(), r.on.mips(), r.speedup(),
            r.hitRate(), (unsigned long long)r.on.fastEntered,
            (unsigned long long)r.on.fastDeopts,
            (unsigned long long)r.off.instructions,
            (unsigned long long)r.on.instructions,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"httpd_speedup\": %.3f,\n"
                 "  \"httpd_hit_rate\": %.4f\n}\n",
                 httpdSpeedup, httpdHitRate);
    std::fclose(f);
    std::printf("wrote BENCH_fastpath.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--stats") == 0)
            dumpStats = true;
    }
    if (smoke)
        repeats = 3; // the floor check wants a stable minimum

    std::printf("\n=== Taint-clean fast path: host time, instrumented "
                "vs dual-version superblocks ===\n");
    std::printf("%-14s %12s %12s %9s %9s %10s\n", "workload",
                "MIPS instr", "MIPS fast", "speedup", "hit rate",
                "deopts");
    benchutil::rule(72);

    // The floor row serves clean (untainted) requests — the paper's
    // figure-6 regime, where the server never touches tainted data
    // and the fast tier should be carrying every probe. The tainted
    // row serves the same connections with network taint on: the
    // request-parsing loops run tainted bytes through the slow twin,
    // so its speedup is bounded by the workload's taint share (see
    // docs/FAST-PATH.md) — it is reported for realism, not floored.
    std::vector<Row> rows;
    int requests = smoke ? 30 : 50;
    rows.push_back(measureHttpd("httpd/clean", requests, false));
    rows.push_back(measureHttpd("httpd/tainted", requests, true));
    if (!smoke) {
        for (const SpecKernel &kernel : specKernels())
            rows.push_back(measureSpec(kernel));
    }

    double httpdSpeedup = rows.front().speedup();
    double httpdHitRate = rows.front().hitRate();
    for (const Row &r : rows) {
        std::printf("%-14s %12.1f %12.1f %8.2fx %8.1f%% %10llu\n",
                    r.name.c_str(), r.off.mips(), r.on.mips(),
                    r.speedup(), 100.0 * r.hitRate(),
                    (unsigned long long)r.on.fastDeopts);
        registerMetricRow("fastpath/" + r.name,
                          {{"mips_instrumented", r.off.mips()},
                           {"mips_fastpath", r.on.mips()},
                           {"host_speedup_X", r.speedup()},
                           {"hit_rate", r.hitRate()}});
    }
    benchutil::rule(72);
    std::printf("(verdicts and responses verified identical on every "
                "row)\n\n");

    writeJson(rows, httpdSpeedup, httpdHitRate);

    if (smoke) {
        if (httpdSpeedup < 1.3) {
            std::fprintf(stderr,
                         "perf-smoke-fastpath FAIL: only %.2fx the "
                         "instrumented engine on clean httpd requests "
                         "(floor 1.3x)\n",
                         httpdSpeedup);
            return 1;
        }
        if (httpdHitRate < 0.90) {
            std::fprintf(stderr,
                         "perf-smoke-fastpath FAIL: hit rate %.1f%% on "
                         "clean requests (floor 90%%)\n",
                         100.0 * httpdHitRate);
            return 1;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
