/**
 * @file
 * Related-work comparison (paper sections 6.2 / 7.1): SHIFT versus
 * LIFT-style software-only DIFT on identical workloads and substrate.
 *
 * The paper reports LIFT at 4.6X slowdown versus SHIFT's 2.27X/2.81X;
 * the crossing claim to reproduce is that hardware NaT propagation
 * roughly halves the cost of taint tracking because register-to-
 * register flow becomes free.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

void
printComparison()
{
    std::printf("\n=== SHIFT vs software-only DIFT (LIFT-style), "
                "unsafe input ===\n");
    std::printf("%-12s %12s %12s %12s %9s\n", "benchmark",
                "shift-byte", "shift-word", "software", "sw/shift");
    benchutil::rule(62);

    std::vector<double> sb, sw, soft;
    for (const SpecKernel &kernel : specKernels()) {
        auto cyclesFor = [&](TrackingMode mode, Granularity g) {
            SpecRunConfig config;
            config.mode = mode;
            config.granularity = g;
            config.taintInput = true;
            SpecRun run = runSpecKernel(kernel, config);
            if (!run.result.ok()) {
                std::fprintf(stderr, "%s failed\n", kernel.name.c_str());
                std::exit(1);
            }
            return run.result.cycles;
        };
        uint64_t base = cyclesFor(TrackingMode::None, Granularity::Byte);
        double shiftByte =
            double(cyclesFor(TrackingMode::Shift, Granularity::Byte)) /
            base;
        double shiftWord =
            double(cyclesFor(TrackingMode::Shift, Granularity::Word)) /
            base;
        double software =
            double(cyclesFor(TrackingMode::SoftwareDift,
                             Granularity::Byte)) / base;

        std::printf("%-12s %11.2fX %11.2fX %11.2fX %8.2fx\n",
                    kernel.name.c_str(), shiftByte, shiftWord, software,
                    software / shiftWord);
        sb.push_back(shiftByte);
        sw.push_back(shiftWord);
        soft.push_back(software);

        registerMetricRow("baseline/" + kernel.shortName,
                          {{"shift_byte_X", shiftByte},
                           {"shift_word_X", shiftWord},
                           {"software_X", software}});
    }
    benchutil::rule(62);
    std::printf("%-12s %11.2fX %11.2fX %11.2fX %8.2fx\n", "geo.mean",
                geomean(sb), geomean(sw), geomean(soft),
                geomean(soft) / geomean(sw));
    std::printf("paper: LIFT 4.6X vs SHIFT 2.27X (word) / 2.81X "
                "(byte)\n\n");
    registerMetricRow("baseline/geomean",
                      {{"shift_byte_X", geomean(sb)},
                       {"shift_word_X", geomean(sw)},
                       {"software_X", geomean(soft)}});
}

} // namespace

int
main(int argc, char **argv)
{
    printComparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
