/**
 * @file
 * Figure 9: breakdown of the instrumentation overhead between tag
 * computation (address translation, masks) and tag memory access
 * (bitmap loads/stores), split by whether it was emitted for a load or
 * for a store, at both granularities.
 *
 * Paper reference: computation dominates memory access (the Itanium
 * unimplemented-bit fold makes tag addresses expensive while the
 * bitmap mostly hits in L1), and the load path dominates the store
 * path because programs execute far more loads than stores.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

struct Breakdown
{
    double compLoad, memLoad, compStore, memStore;
};

Breakdown
measure(const SpecKernel &kernel, Granularity g, uint64_t &baseCycles)
{
    SpecRunConfig base;
    base.mode = TrackingMode::None;
    SpecRun baseRun = runSpecKernel(kernel, base);
    baseCycles = baseRun.result.cycles;

    SpecRunConfig cfg;
    cfg.mode = TrackingMode::Shift;
    cfg.granularity = g;
    cfg.taintInput = true;
    SpecRun run = runSpecKernel(kernel, cfg);
    if (!run.result.ok() || !baseRun.result.ok()) {
        std::fprintf(stderr, "%s failed\n", kernel.name.c_str());
        std::exit(1);
    }

    const StatSet &st = run.result.stats;
    Breakdown b;
    // Tag computation = tag-address arithmetic + register tag glue.
    b.compLoad = double(st.get("engine.cycles.tagaddr.load") +
                        st.get("engine.cycles.tagreg.load"));
    b.memLoad = double(st.get("engine.cycles.tagmem.load"));
    b.compStore = double(st.get("engine.cycles.tagaddr.store") +
                         st.get("engine.cycles.tagreg.store"));
    b.memStore = double(st.get("engine.cycles.tagmem.store"));
    return b;
}

void
printFigure9()
{
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        const char *gname = g == Granularity::Byte ? "byte" : "word";
        std::printf("\n=== Figure 9 (%s level): overhead fraction of "
                    "baseline cycles ===\n", gname);
        std::printf("%-12s %11s %11s %11s %11s\n", "benchmark",
                    "comp(load)", "mem(load)", "comp(store)",
                    "mem(store)");
        benchutil::rule(62);
        for (const SpecKernel &kernel : specKernels()) {
            uint64_t base = 0;
            Breakdown b = measure(kernel, g, base);
            double scale = 1.0 / double(base);
            std::printf("%-12s %10.2f%% %10.2f%% %10.2f%% %10.2f%%\n",
                        kernel.name.c_str(), b.compLoad * scale * 100,
                        b.memLoad * scale * 100,
                        b.compStore * scale * 100,
                        b.memStore * scale * 100);
            registerMetricRow(
                std::string("fig9/") + gname + "/" + kernel.shortName,
                {{"comp_load_pct", b.compLoad * scale * 100},
                 {"mem_load_pct", b.memLoad * scale * 100},
                 {"comp_store_pct", b.compStore * scale * 100},
                 {"mem_store_pct", b.memStore * scale * 100}});
        }
        benchutil::rule(62);
    }
    std::printf("paper: computation >> memory access (tag loads hit "
                "L1); loads >> stores\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printFigure9();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
