/**
 * @file
 * Ablation: where does SHIFT's overhead come from?
 *
 * Complements figure 9's provenance breakdown by switching whole
 * instrumentation classes off: loads only, stores only, compares only,
 * and each one removed from the full configuration. DESIGN.md calls
 * out the load path and compare relaxation as the design's dominant
 * costs; this measures both claims directly.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

struct Variant
{
    const char *name;
    bool loads, stores, compares;
    bool reuseTagAddr = false;
};

const Variant kVariants[] = {
    {"full", true, true, true},
    {"loads-only", true, false, false},
    {"stores-only", false, true, false},
    {"compares-only", false, false, true},
    {"no-compares", true, true, false},
    // The paper's section 6.4 suggestion: reuse adjacent tag-address
    // computations.
    {"full+cse", true, true, true, true},
};

uint64_t
cyclesFor(const SpecKernel &kernel, TrackingMode mode,
          const Variant &variant)
{
    SpecRunConfig config;
    config.mode = mode;
    config.granularity = Granularity::Byte;
    config.taintInput = false; // avoid L1/L2 with partial tracking
    SessionOptions options;
    options.mode = mode;
    options.policy.granularity = config.granularity;
    options.policy.taintFile = false;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.instr.instrumentLoads = variant.loads;
    options.instr.instrumentStores = variant.stores;
    options.instr.instrumentCompares = variant.compares;
    options.instr.reuseTagAddr = variant.reuseTagAddr;

    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    RunResult run = session.run();
    if (!run.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", kernel.name.c_str(),
                     variant.name, faultKindName(run.fault.kind));
        std::exit(1);
    }
    return run.cycles;
}

void
printTable()
{
    std::printf("\n=== Ablation (byte level, clean input): slowdown by "
                "instrumentation class ===\n");
    std::printf("%-12s", "benchmark");
    for (const Variant &v : kVariants)
        std::printf(" %13s", v.name);
    std::printf("\n");
    benchutil::rule(98);

    std::vector<std::vector<double>> columns(std::size(kVariants));
    for (const SpecKernel &kernel : specKernels()) {
        Variant none{"none", false, false, false};
        uint64_t base = cyclesFor(kernel, TrackingMode::None, none);
        std::printf("%-12s", kernel.name.c_str());
        std::map<std::string, double> counters;
        for (size_t v = 0; v < std::size(kVariants); ++v) {
            double ratio =
                double(cyclesFor(kernel, TrackingMode::Shift,
                                 kVariants[v])) / double(base);
            columns[v].push_back(ratio);
            counters[std::string(kVariants[v].name) + "_X"] = ratio;
            std::printf(" %12.2fX", ratio);
        }
        std::printf("\n");
        registerMetricRow("ablation/" + kernel.shortName,
                          std::move(counters));
    }
    benchutil::rule(84);
    std::printf("%-12s", "geo.mean");
    for (const auto &col : columns)
        std::printf(" %12.2fX", geomean(col));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
