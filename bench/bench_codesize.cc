/**
 * @file
 * Table 3: static code-size expansion from compiler instrumentation.
 *
 * Original vs word-level vs byte-level instrumented static instruction
 * counts for the MiniC standard library (the paper's glibc row) and
 * each SPEC kernel. Paper reference: glibc 36%/45% (word/byte); SPEC
 * 132-223% (word) and 160-288% (byte), byte always above word.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/instrument.hh"
#include "lang/compiler.hh"
#include "runtime/minic_stdlib.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

struct SizeRow
{
    uint64_t orig, word, byte;
};

/** Static size of `source` under no/word/byte instrumentation. */
SizeRow
measureSizes(const std::vector<std::string> &sources,
             const std::set<std::string> &relaxLoads,
             const std::set<std::string> &relaxStores)
{
    SizeRow row{};
    minic::CompileOptions copts;
    copts.requireMain = false;

    Program orig = minic::compileProgram(sources, copts);
    row.orig = orig.staticInstrCount();

    for (Granularity g : {Granularity::Word, Granularity::Byte}) {
        Program prog = minic::compileProgram(sources, copts);
        InstrumentOptions opts;
        opts.granularity = g;
        opts.relaxLoadFunctions = relaxLoads;
        opts.relaxStoreFunctions = relaxStores;
        instrumentProgram(prog, opts);
        if (g == Granularity::Word)
            row.word = prog.staticInstrCount();
        else
            row.byte = prog.staticInstrCount();
    }
    return row;
}

void
printRow(const std::string &name, const SizeRow &row)
{
    double wordPct = 100.0 * (double(row.word) / row.orig - 1.0);
    double bytePct = 100.0 * (double(row.byte) / row.orig - 1.0);
    std::printf("%-12s %8llu %10llu %7.0f%% %10llu %7.0f%%\n",
                name.c_str(),
                static_cast<unsigned long long>(row.orig),
                static_cast<unsigned long long>(row.word), wordPct,
                static_cast<unsigned long long>(row.byte), bytePct);
    registerMetricRow("table3/" + name,
                      {{"orig_insns", double(row.orig)},
                       {"word_overhead_pct", wordPct},
                       {"byte_overhead_pct", bytePct}});
}

void
printTable3()
{
    std::printf("\n=== Table 3: static code-size expansion "
                "(instructions) ===\n");
    std::printf("%-12s %8s %10s %8s %10s %8s\n", "module", "orig",
                "word", "ovh", "byte", "ovh");
    benchutil::rule(62);

    // The "glibc" row: the MiniC standard library alone.
    printRow("libc", measureSizes({kMiniCStdlib}, {}, {}));

    for (const SpecKernel &kernel : specKernels()) {
        printRow(kernel.shortName,
                 measureSizes({kMiniCStdlib, kernel.source},
                              kernel.relaxLoadFunctions,
                              kernel.relaxStoreFunctions));
    }
    benchutil::rule(62);
    std::printf("paper: glibc +36%%/+45%% (word/byte); SPEC "
                "+132-223%% (word), +160-288%% (byte)\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printTable3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
