/**
 * @file
 * Fleet throughput: compile-once / clone-many serving vs today's
 * one-Session-per-job monolith harness, plus the worker scaling curve.
 *
 * The monolith baseline is exactly what the repo did before src/svc
 * existed: every job compiles, instruments and lays out a fresh
 * Session, then serves its requests on one thread. The fleet pays the
 * compile+decode+snapshot once and forks copy-on-write clones per
 * job, so its aggregate requests/host-second win comes from compile
 * amortization (every host) and worker parallelism (multi-core
 * hosts). Every fleet job is verified bit-identical (cycles,
 * instructions, alerts, response bytes) against its monolith twin —
 * throughput without fidelity is worthless.
 *
 * Writes BENCH_fleet.json (same schema family as BENCH_interp.json).
 * `--smoke` runs a reduced matrix and exits non-zero when the
 * 4-worker fleet fails to clear 2x the monolith throughput — the
 * perf-smoke-fleet CI tripwire.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "svc/fleet.hh"
#include "workloads/httpd.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct JobOutcome
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    size_t alerts = 0;
    std::vector<std::string> responses;
};

struct Row
{
    std::string name;
    unsigned workers = 0;
    size_t requests = 0;
    double hostSeconds = 0;
    std::vector<JobOutcome> outcomes;

    double rps() const
    {
        return hostSeconds > 0 ? double(requests) / hostSeconds : 0;
    }
};

/** The pre-svc harness: a fresh Session per job, sequential. */
Row
runMonolith(const HttpdFleetConfig &config,
            const std::vector<svc::FleetJob> &jobs)
{
    Row row;
    row.name = "monolith";
    row.workers = 1;
    double start = now();
    for (const svc::FleetJob &job : jobs) {
        SessionOptions options = httpdSessionOptions(
            config.mode, config.granularity, config.features,
            config.engine);
        Session session(kHttpdSource, options);
        provisionHttpdOs(session.os(), config.fileSize);
        for (const std::string &request : job.requests)
            session.os().queueConnection(request);
        RunResult result = session.run();
        if (result.fault) {
            std::fprintf(stderr, "bench_fleet: monolith job faulted\n");
            std::exit(1);
        }
        JobOutcome out;
        out.cycles = result.cycles;
        out.instructions = result.instructions;
        out.alerts = result.alerts.size();
        out.responses = session.os().responses();
        row.requests += out.responses.size();
        row.outcomes.push_back(std::move(out));
    }
    row.hostSeconds = now() - start;
    return row;
}

/** One fleet measurement: build+freeze+serve, end to end. */
Row
runFleetAt(HttpdFleetConfig config, unsigned workers)
{
    config.workers = workers;
    double start = now();
    HttpdFleetRun run = runHttpdFleet(config);
    double total = now() - start;
    if (!run.responsesOk) {
        std::fprintf(stderr, "bench_fleet: fleet@%u bad responses\n",
                     workers);
        std::exit(1);
    }
    Row row;
    row.name = "fleet@" + std::to_string(workers);
    row.workers = workers;
    row.requests = run.report.requests;
    // End-to-end time including the one-time compile+snapshot: the
    // honest comparison against the monolith, which pays its compile
    // inside every job.
    row.hostSeconds = total;
    for (const svc::FleetJobResult &jr : run.report.jobResults) {
        JobOutcome out;
        out.cycles = jr.result.cycles;
        out.instructions = jr.result.instructions;
        out.alerts = jr.result.alerts.size();
        out.responses = jr.responses;
        row.outcomes.push_back(std::move(out));
    }
    return row;
}

/** Abort loudly unless every fleet job matches its monolith twin. */
void
checkIdentical(const Row &monolith, const Row &fleet)
{
    if (monolith.outcomes.size() != fleet.outcomes.size()) {
        std::fprintf(stderr, "bench_fleet: job count mismatch\n");
        std::exit(1);
    }
    for (size_t j = 0; j < monolith.outcomes.size(); ++j) {
        const JobOutcome &a = monolith.outcomes[j];
        const JobOutcome &b = fleet.outcomes[j];
        if (a.cycles != b.cycles || a.instructions != b.instructions ||
            a.alerts != b.alerts || a.responses != b.responses) {
            std::fprintf(
                stderr,
                "bench_fleet: FLEET MISMATCH on job %zu vs %s: "
                "monolith {cycles=%llu instrs=%llu alerts=%zu} vs "
                "fleet {cycles=%llu instrs=%llu alerts=%zu}\n",
                j, fleet.name.c_str(), (unsigned long long)a.cycles,
                (unsigned long long)a.instructions, a.alerts,
                (unsigned long long)b.cycles,
                (unsigned long long)b.instructions, b.alerts);
            std::exit(1);
        }
    }
}

void
writeJson(const std::vector<Row> &rows, double monolithRps,
          double fleet4Speedup, double forkMs, size_t snapshotPages)
{
    FILE *f = std::fopen("BENCH_fleet.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_fleet: cannot write "
                             "BENCH_fleet.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"workers\": %u, "
            "\"requests\": %zu, \"host_seconds\": %.6f, "
            "\"requests_per_host_second\": %.1f, "
            "\"speedup_vs_monolith\": %.3f}%s\n",
            r.name.c_str(), r.workers, r.requests, r.hostSeconds,
            r.rps(), monolithRps > 0 ? r.rps() / monolithRps : 0,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"fleet4_speedup_vs_monolith\": %.3f,\n"
                 "  \"avg_fork_ms\": %.4f,\n"
                 "  \"snapshot_pages\": %zu\n}\n",
                 fleet4Speedup, forkMs, snapshotPages);
    std::fclose(f);
    std::printf("wrote BENCH_fleet.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    HttpdFleetConfig config;
    config.fileSize = 4 * 1024;
    config.jobs = smoke ? 12 : 32;
    config.requestsPerJob = 4;

    std::vector<svc::FleetJob> jobs = httpdFleetJobs(config);

    std::printf("\n=== Fleet throughput: httpd, %d jobs x %d requests "
                "===\n",
                config.jobs, config.requestsPerJob);
    std::printf("%-12s %8s %10s %12s %10s\n", "harness", "workers",
                "requests", "host secs", "req/sec");
    benchutil::rule(58);

    Row monolith = runMonolith(config, jobs);
    std::vector<Row> rows;
    rows.push_back(monolith);

    std::vector<unsigned> workerCounts =
        smoke ? std::vector<unsigned>{1, 4}
              : std::vector<unsigned>{1, 2, 4, 8};
    for (unsigned w : workerCounts) {
        Row fleet = runFleetAt(config, w);
        checkIdentical(monolith, fleet);
        rows.push_back(std::move(fleet));
    }

    // Fork cost + snapshot size, measured on a dedicated template so
    // the throughput rows stay pure.
    std::unique_ptr<SessionTemplate> tmpl = makeHttpdTemplate(config);
    tmpl->freeze();
    size_t snapshotPages = tmpl->snapshotPages();
    double forkStart = now();
    constexpr int kForkSamples = 50;
    for (int i = 0; i < kForkSamples; ++i) {
        auto clone = tmpl->instantiate();
        benchmark::DoNotOptimize(clone);
    }
    double forkMs = (now() - forkStart) * 1000.0 / kForkSamples;

    double fleet4Speedup = 0;
    for (const Row &r : rows) {
        std::printf("%-12s %8u %10zu %12.4f %10.1f\n", r.name.c_str(),
                    r.workers, r.requests, r.hostSeconds, r.rps());
        double speedup =
            monolith.rps() > 0 ? r.rps() / monolith.rps() : 0;
        if (r.workers == 4 && r.name != "monolith")
            fleet4Speedup = speedup;
        registerMetricRow("fleet/" + r.name,
                          {{"requests_per_sec", r.rps()},
                           {"speedup_vs_monolith_X", speedup}});
    }
    benchutil::rule(58);
    std::printf("clone fork: %.3f ms avg over %d forks "
                "(%zu snapshot pages shared)\n",
                forkMs, kForkSamples, snapshotPages);
    std::printf("fleet@4 vs monolith: %.2fx "
                "(every job verified bit-identical)\n\n",
                fleet4Speedup);

    registerMetricRow("fleet/fork",
                      {{"fork_ms", forkMs},
                       {"snapshot_pages", double(snapshotPages)}});
    writeJson(rows, monolith.rps(), fleet4Speedup, forkMs,
              snapshotPages);

    if (smoke && fleet4Speedup < 2.0) {
        std::fprintf(stderr,
                     "perf-smoke FAIL: fleet@4 only %.2fx the monolith "
                     "harness (floor 2.0x)\n",
                     fleet4Speedup);
        return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
