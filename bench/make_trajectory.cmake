# Merge every BENCH_*.json into one BENCH_trajectory.json blob:
# {"generated": <epoch>, "benches": {"<name>": <contents>, ...}}.
# Each bench binary owns its BENCH_<name>.json schema; this script only
# aggregates, so charting tooling reads a single artifact per build.
#
# Sources, in order of preference per bench name:
#   1. BENCH_DIR (the build tree) — fresh results from benches run here.
#   2. BENCH_SOURCE_DIR (the repo root) — the committed baselines. A
#      fresh build tree has run no benches yet, and the old behaviour of
#      globbing only BENCH_DIR silently produced an EMPTY trajectory
#      there; the committed files are exactly the series the trajectory
#      exists to chart, so they are the fallback row by row.
#
#   cmake -DBENCH_DIR=build [-DBENCH_SOURCE_DIR=.] \
#         [-DREQUIRE_NONEMPTY=1] -P bench/make_trajectory.cmake

cmake_policy(SET CMP0057 NEW) # IN_LIST in script mode

if(NOT DEFINED BENCH_DIR)
    set(BENCH_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

# The full artifact set the bench binaries can emit. Missing entries
# are normal — only the benches actually run (or committed) have files
# — so they are reported and skipped, never an error.
set(known_benches
    interp fleet overhead fastpath obs async jit prof)

# Collect one file per bench name: build tree first, committed
# baseline second.
set(bench_files "")
file(GLOB fresh_files "${BENCH_DIR}/BENCH_*.json")
list(FILTER fresh_files EXCLUDE REGEX "BENCH_trajectory\\.json$")
set(fresh_names "")
foreach(path IN LISTS fresh_files)
    get_filename_component(fname "${path}" NAME_WE)
    string(REGEX REPLACE "^BENCH_" "" bench_name "${fname}")
    list(APPEND fresh_names "${bench_name}")
    list(APPEND bench_files "${path}")
endforeach()

if(DEFINED BENCH_SOURCE_DIR)
    file(GLOB committed_files "${BENCH_SOURCE_DIR}/BENCH_*.json")
    list(FILTER committed_files EXCLUDE REGEX "BENCH_trajectory\\.json$")
    foreach(path IN LISTS committed_files)
        get_filename_component(fname "${path}" NAME_WE)
        string(REGEX REPLACE "^BENCH_" "" bench_name "${fname}")
        if(NOT bench_name IN_LIST fresh_names)
            list(APPEND bench_files "${path}")
        endif()
    endforeach()
endif()

# Emit rows in the fixed known_benches order so trajectory diffs are
# stable tier by tier (a lexicographic sort interleaved unrelated
# benches whenever a new BENCH_*.json appeared). Benches not in the
# known list — a new bench binary whose name has not been registered
# here yet — follow after, sorted, rather than being dropped.
set(ordered_files "")
foreach(name IN LISTS known_benches)
    set(have FALSE)
    foreach(path IN LISTS bench_files)
        if(path MATCHES "BENCH_${name}\\.json$")
            list(APPEND ordered_files "${path}")
            set(have TRUE)
        endif()
    endforeach()
    if(NOT have)
        message(STATUS
            "bench-trajectory: BENCH_${name}.json not present "
            "(bench_${name} not run, no committed baseline) — skipping")
    endif()
endforeach()
set(extra_files "")
foreach(path IN LISTS bench_files)
    if(NOT path IN_LIST ordered_files)
        list(APPEND extra_files "${path}")
    endif()
endforeach()
list(SORT extra_files)
set(bench_files ${ordered_files} ${extra_files})

if(NOT bench_files)
    if(REQUIRE_NONEMPTY)
        message(FATAL_ERROR
            "bench-trajectory: no BENCH_*.json found in ${BENCH_DIR} "
            "or the committed baselines — the trajectory would be "
            "empty")
    endif()
    message(STATUS
        "bench-trajectory: no BENCH_*.json in ${BENCH_DIR} — writing "
        "an empty trajectory (run a bench binary to populate it, e.g. "
        "./bench/bench_interp)")
    string(TIMESTAMP now "%s" UTC)
    file(WRITE "${BENCH_DIR}/BENCH_trajectory.json"
        "{\n  \"generated\": ${now},\n  \"benches\": {}\n}\n")
    return()
endif()

string(TIMESTAMP now "%s" UTC)
set(blob "{\n  \"generated\": ${now},\n  \"benches\": {\n")
set(first TRUE)
foreach(path IN LISTS bench_files)
    get_filename_component(fname "${path}" NAME_WE)
    string(REGEX REPLACE "^BENCH_" "" bench_name "${fname}")
    file(READ "${path}" contents)
    string(STRIP "${contents}" contents)
    # Indent the nested document two levels for readability.
    string(REPLACE "\n" "\n    " contents "${contents}")
    if(NOT first)
        string(APPEND blob ",\n")
    endif()
    set(first FALSE)
    string(APPEND blob "    \"${bench_name}\": ${contents}")
endforeach()
string(APPEND blob "\n  }\n}\n")

file(WRITE "${BENCH_DIR}/BENCH_trajectory.json" "${blob}")
list(LENGTH bench_files count)
message(STATUS
    "bench-trajectory: merged ${count} bench file(s) into "
    "${BENCH_DIR}/BENCH_trajectory.json")
