# Merge every BENCH_*.json in BENCH_DIR into one BENCH_trajectory.json
# blob: {"generated": <epoch>, "benches": {"<name>": <contents>, ...}}.
# Each bench binary owns its BENCH_<name>.json schema; this script only
# aggregates, so charting tooling reads a single artifact per build.
#
#   cmake -DBENCH_DIR=/path/to/build -P bench/make_trajectory.cmake

if(NOT DEFINED BENCH_DIR)
    set(BENCH_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

file(GLOB bench_files "${BENCH_DIR}/BENCH_*.json")
list(FILTER bench_files EXCLUDE REGEX "BENCH_trajectory\\.json$")
list(SORT bench_files)

if(NOT bench_files)
    message(FATAL_ERROR
        "bench-trajectory: no BENCH_*.json in ${BENCH_DIR} — run at "
        "least one bench binary first (e.g. ./bench/bench_interp)")
endif()

string(TIMESTAMP now "%s" UTC)
set(blob "{\n  \"generated\": ${now},\n  \"benches\": {\n")
set(first TRUE)
foreach(path IN LISTS bench_files)
    get_filename_component(fname "${path}" NAME_WE)
    string(REGEX REPLACE "^BENCH_" "" bench_name "${fname}")
    file(READ "${path}" contents)
    string(STRIP "${contents}" contents)
    # Indent the nested document two levels for readability.
    string(REPLACE "\n" "\n    " contents "${contents}")
    if(NOT first)
        string(APPEND blob ",\n")
    endif()
    set(first FALSE)
    string(APPEND blob "    \"${bench_name}\": ${contents}")
endforeach()
string(APPEND blob "\n  }\n}\n")

file(WRITE "${BENCH_DIR}/BENCH_trajectory.json" "${blob}")
list(LENGTH bench_files count)
message(STATUS
    "bench-trajectory: merged ${count} bench file(s) into "
    "${BENCH_DIR}/BENCH_trajectory.json")
