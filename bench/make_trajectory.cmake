# Merge every BENCH_*.json in BENCH_DIR into one BENCH_trajectory.json
# blob: {"generated": <epoch>, "benches": {"<name>": <contents>, ...}}.
# Each bench binary owns its BENCH_<name>.json schema; this script only
# aggregates, so charting tooling reads a single artifact per build.
#
#   cmake -DBENCH_DIR=/path/to/build -P bench/make_trajectory.cmake

if(NOT DEFINED BENCH_DIR)
    set(BENCH_DIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

file(GLOB bench_files "${BENCH_DIR}/BENCH_*.json")
list(FILTER bench_files EXCLUDE REGEX "BENCH_trajectory\\.json$")
list(SORT bench_files)

# The full artifact set the bench binaries can emit. Missing entries
# are normal — only the benches actually run in this tree have files —
# so they are reported and skipped, never an error.
set(known_benches
    interp fleet overhead fastpath obs async)
foreach(name IN LISTS known_benches)
    if(NOT EXISTS "${BENCH_DIR}/BENCH_${name}.json")
        message(STATUS
            "bench-trajectory: BENCH_${name}.json not present "
            "(bench_${name} not run) — skipping")
    endif()
endforeach()

if(NOT bench_files)
    message(STATUS
        "bench-trajectory: no BENCH_*.json in ${BENCH_DIR} — writing "
        "an empty trajectory (run a bench binary to populate it, e.g. "
        "./bench/bench_interp)")
    string(TIMESTAMP now "%s" UTC)
    file(WRITE "${BENCH_DIR}/BENCH_trajectory.json"
        "{\n  \"generated\": ${now},\n  \"benches\": {}\n}\n")
    return()
endif()

string(TIMESTAMP now "%s" UTC)
set(blob "{\n  \"generated\": ${now},\n  \"benches\": {\n")
set(first TRUE)
foreach(path IN LISTS bench_files)
    get_filename_component(fname "${path}" NAME_WE)
    string(REGEX REPLACE "^BENCH_" "" bench_name "${fname}")
    file(READ "${path}" contents)
    string(STRIP "${contents}" contents)
    # Indent the nested document two levels for readability.
    string(REPLACE "\n" "\n    " contents "${contents}")
    if(NOT first)
        string(APPEND blob ",\n")
    endif()
    set(first FALSE)
    string(APPEND blob "    \"${bench_name}\": ${contents}")
endforeach()
string(APPEND blob "\n  }\n}\n")

file(WRITE "${BENCH_DIR}/BENCH_trajectory.json" "${blob}")
list(LENGTH bench_files count)
message(STATUS
    "bench-trajectory: merged ${count} bench file(s) into "
    "${BENCH_DIR}/BENCH_trajectory.json")
