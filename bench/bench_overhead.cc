/**
 * @file
 * DIFT overhead trajectory (figures 7/8 companion): simulated
 * dynamic-instruction and cycle overhead of SHIFT instrumentation over
 * the un-instrumented run, across the mitigation axes this repo has
 * grown —
 *
 *   base      instrumented, stock ISA, no optimizer (the PR-2 shape)
 *   isa       + architectural extensions (setnat/clrnat, cmp.nat)
 *   opt       + post-instrumentation optimizer (src/opt)
 *   isa+opt   both
 *
 * at byte and word granularity, for every SPEC mini kernel. Each row
 * also reports host MIPS so the simulated win can be weighed against
 * interpreter speed (fused micro-ops keep the architectural
 * instruction count unchanged but cut host dispatches; the optimizer
 * cuts both). Every optimized run is checked verdict-identical to its
 * unoptimized sibling (exit status, exit code, policy kills, alert
 * count) — bitmap identity down to the content hash is pinned by
 * tests/test_opt.cc. The attack sweep then re-runs all eight table-2
 * exploits with the optimizer on: detection must be 8/8 with zero
 * false positives on the benign inputs.
 *
 * Writes BENCH_overhead.json with the per-kernel table, the aggregate
 * overhead cut, and the attack tally.
 *
 * `--smoke` (the `perf-smoke-overhead` target) runs the byte-gran
 * base-vs-optimizer comparison only and exits non-zero when the
 * optimizer cuts less than 20% of the aggregate simulated
 * instrumentation overhead across the SPEC minis.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workloads/attacks.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

/** The instrumented-run variants measured per kernel/granularity. */
struct Variant
{
    const char *name;
    bool isaExtensions;
    bool optimizer;
};

const Variant kVariants[] = {
    {"base", false, false},
    {"isa", true, false},
    {"opt", false, true},
    {"isa_opt", true, true},
};

struct Cell
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double mips = 0;
    OptStats optStats;
};

struct Row
{
    std::string kernel;
    Granularity granularity = Granularity::Byte;
    uint64_t noneInstructions = 0;
    uint64_t noneCycles = 0;
    Cell cells[4]; ///< indexed like kVariants

    double instrOverhead(int v) const
    {
        return double(cells[v].instructions) / double(noneInstructions);
    }
    double cycleOverhead(int v) const
    {
        return double(cells[v].cycles) / double(noneCycles);
    }
};

const char *
granName(Granularity g)
{
    return g == Granularity::Byte ? "byte" : "word";
}

/**
 * The optimizer must not change what the program computes or what the
 * policies decide — only how many instructions it takes. Any verdict
 * drift here means the differential suite has a hole.
 */
void
checkVerdictIdentical(const std::string &what, const RunResult &off,
                      const RunResult &on)
{
    if (off.exited != on.exited || off.exitCode != on.exitCode ||
        off.killedByPolicy != on.killedByPolicy ||
        off.alerts.size() != on.alerts.size()) {
        std::fprintf(stderr,
                     "bench_overhead: VERDICT MISMATCH on %s: "
                     "off {exited=%d code=%lld killed=%d alerts=%zu} vs "
                     "on {exited=%d code=%lld killed=%d alerts=%zu}\n",
                     what.c_str(), off.exited,
                     (long long)off.exitCode, off.killedByPolicy,
                     off.alerts.size(), on.exited,
                     (long long)on.exitCode, on.killedByPolicy,
                     on.alerts.size());
        std::exit(1);
    }
}

SpecRun
runVariant(const SpecKernel &kernel, Granularity g, const Variant &v)
{
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = g;
    config.features.natSetClear = v.isaExtensions;
    config.features.natAwareCompare = v.isaExtensions;
    config.optimize.enable = v.optimizer;
    SpecRun run = runSpecKernel(kernel, config);
    if (!run.result.ok()) {
        std::fprintf(stderr, "bench_overhead: %s/%s/%s failed (%s)\n",
                     kernel.shortName.c_str(), granName(g), v.name,
                     run.result.fault.detail.c_str());
        std::exit(1);
    }
    return run;
}

Row
measureRow(const SpecKernel &kernel, Granularity g, int variantCount)
{
    Row row;
    row.kernel = kernel.shortName;
    row.granularity = g;

    SpecRunConfig none;
    none.mode = TrackingMode::None;
    SpecRun noneRun = runSpecKernel(kernel, none);
    row.noneInstructions = noneRun.result.instructions;
    row.noneCycles = noneRun.result.cycles;

    SpecRun runs[4];
    for (int v = 0; v < variantCount; ++v) {
        runs[v] = runVariant(kernel, g, kVariants[v]);
        Cell &cell = row.cells[v];
        cell.instructions = runs[v].result.instructions;
        cell.cycles = runs[v].result.cycles;
        cell.mips = runs[v].runSeconds > 0
                        ? double(cell.instructions) /
                              runs[v].runSeconds / 1e6
                        : 0;
        cell.optStats = runs[v].optStats;
    }
    // opt vs base, and isa_opt vs isa when measured.
    checkVerdictIdentical(row.kernel + "/" + granName(g),
                          runs[0].result, runs[variantCount > 2 ? 2 : 1]
                                              .result);
    if (variantCount == 4)
        checkVerdictIdentical(row.kernel + "/" + granName(g) + "/isa",
                              runs[1].result, runs[3].result);
    return row;
}

/**
 * Aggregate overhead cut between two variants: how much of the total
 * extra instructions (beyond the un-instrumented runs) the second
 * variant removes, summed across kernels. Instruction counts, not
 * ratios, so big kernels weigh what they cost.
 */
double
aggregateCut(const std::vector<Row> &rows, int from, int to)
{
    double extraFrom = 0, extraTo = 0;
    for (const Row &r : rows) {
        extraFrom +=
            double(r.cells[from].instructions - r.noneInstructions);
        extraTo += double(r.cells[to].instructions - r.noneInstructions);
    }
    return extraFrom > 0 ? 100.0 * (1.0 - extraTo / extraFrom) : 0;
}

struct AttackTally
{
    int total = 0;
    int detected = 0;
    int falsePositives = 0;
};

AttackTally
sweepAttacks()
{
    AttackTally tally;
    OptimizerOptions optimize;
    optimize.enable = true;
    for (const AttackScenario &scenario : attackScenarios()) {
        ++tally.total;
        AttackRun exploit =
            runAttackScenario(scenario, true, Granularity::Byte,
                              ExecEngine::Predecoded, optimize);
        AttackRun benign =
            runAttackScenario(scenario, false, Granularity::Byte,
                              ExecEngine::Predecoded, optimize);
        if (exploit.detected)
            ++tally.detected;
        else
            std::fprintf(stderr,
                         "bench_overhead: attack %s NOT detected with "
                         "optimizer on\n",
                         scenario.name.c_str());
        if (benign.falsePositive) {
            ++tally.falsePositives;
            std::fprintf(stderr,
                         "bench_overhead: attack %s benign run raised "
                         "an alert with optimizer on\n",
                         scenario.name.c_str());
        }
    }
    return tally;
}

void
writeJson(const std::vector<Row> &rows, double byteCut, double wordCut,
          const AttackTally &attacks)
{
    FILE *f = std::fopen("BENCH_overhead.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_overhead: cannot write "
                             "BENCH_overhead.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"baseline\": \"PR-2 instrumented, stock "
                    "ISA, no optimizer\",\n  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        // Stats from the stock-ISA optimizer run (cells[2]): that is
        // the opt-vs-base comparison; with the ISA extensions on there
        // are no relax sequences left to elide.
        const OptStats &s = r.cells[2].optStats;
        std::fprintf(
            f,
            "    {\"kernel\": \"%s\", \"granularity\": \"%s\", "
            "\"instructions_none\": %llu, "
            "\"overhead_base\": %.3f, \"overhead_isa\": %.3f, "
            "\"overhead_opt\": %.3f, \"overhead_isa_opt\": %.3f, "
            "\"cycle_overhead_base\": %.3f, "
            "\"cycle_overhead_isa_opt\": %.3f, "
            "\"mips_base\": %.1f, \"mips_isa_opt\": %.1f, "
            "\"opt_checks_narrowed\": %llu, "
            "\"opt_updates_narrowed\": %llu, "
            "\"opt_relax_elided\": %llu}%s\n",
            r.kernel.c_str(), granName(r.granularity),
            (unsigned long long)r.noneInstructions, r.instrOverhead(0),
            r.instrOverhead(1), r.instrOverhead(2), r.instrOverhead(3),
            r.cycleOverhead(0), r.cycleOverhead(3), r.cells[0].mips,
            r.cells[3].mips, (unsigned long long)s.checksNarrowed,
            (unsigned long long)s.updatesNarrowed,
            (unsigned long long)s.relaxElided,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"aggregate\": {\"byte_overhead_cut_pct\": %.1f, "
                 "\"word_overhead_cut_pct\": %.1f},\n"
                 "  \"attacks\": {\"total\": %d, \"detected\": %d, "
                 "\"false_positives\": %d}\n}\n",
                 byteCut, wordCut, attacks.total, attacks.detected,
                 attacks.falsePositives);
    std::fclose(f);
    std::printf("wrote BENCH_overhead.json\n");
}

void
printTable(const std::vector<Row> &rows, int variantCount)
{
    std::printf("%-8s %-5s %10s %8s %8s %8s %8s\n", "kernel", "gran",
                "Minstrs", "base", "isa", "opt", "isa+opt");
    benchutil::rule(62);
    for (const Row &r : rows) {
        std::printf("%-8s %-5s %10.2f", r.kernel.c_str(),
                    granName(r.granularity),
                    double(r.noneInstructions) / 1e6);
        for (int v = 0; v < variantCount; ++v)
            std::printf(" %7.2fx", r.instrOverhead(v));
        std::printf("\n");
    }
    benchutil::rule(62);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    std::printf("\n=== DIFT overhead: simulated instruction ratio vs "
                "un-instrumented run ===\n");

    // Smoke only needs base-vs-opt at byte granularity; the full bench
    // measures all four variants at both granularities.
    std::vector<Row> byteRows, wordRows;
    int variantCount = smoke ? 3 : 4; // base, isa, opt[, isa_opt]
    for (const SpecKernel &kernel : specKernels()) {
        byteRows.push_back(
            measureRow(kernel, Granularity::Byte, variantCount));
        if (!smoke)
            wordRows.push_back(
                measureRow(kernel, Granularity::Word, variantCount));
    }

    printTable(byteRows, variantCount);
    if (!smoke)
        printTable(wordRows, variantCount);

    double byteCut = aggregateCut(byteRows, 0, 2);
    std::printf("aggregate byte-gran overhead cut (opt vs base): "
                "%.1f%%\n",
                byteCut);

    std::vector<double> ovBase, ovOpt;
    for (const Row &r : byteRows) {
        ovBase.push_back(r.instrOverhead(0));
        ovOpt.push_back(r.instrOverhead(2));
    }
    std::printf("geomean byte-gran overhead: base %.2fx -> opt %.2fx\n",
                geomean(ovBase), geomean(ovOpt));

    if (smoke) {
        if (byteCut < 20.0) {
            std::fprintf(stderr,
                         "perf-smoke FAIL: optimizer cuts only %.1f%% "
                         "of the aggregate byte-gran instrumentation "
                         "overhead (floor 20%%)\n",
                         byteCut);
            return 1;
        }
        std::printf("perf-smoke-overhead OK: %.1f%% >= 20%%\n", byteCut);
        return 0;
    }

    double wordCut = aggregateCut(wordRows, 0, 2);
    std::printf("aggregate word-gran overhead cut (opt vs base): "
                "%.1f%%\n",
                wordCut);

    AttackTally attacks = sweepAttacks();
    std::printf("attack sweep with optimizer on: %d/%d detected, %d "
                "false positives\n\n",
                attacks.detected, attacks.total, attacks.falsePositives);

    for (const Row &r : byteRows)
        registerMetricRow(
            "overhead/byte/" + r.kernel,
            {{"overhead_base_X", r.instrOverhead(0)},
             {"overhead_isa_X", r.instrOverhead(1)},
             {"overhead_opt_X", r.instrOverhead(2)},
             {"overhead_isa_opt_X", r.instrOverhead(3)},
             {"mips_isa_opt", r.cells[3].mips}});
    registerMetricRow("overhead/aggregate",
                      {{"byte_cut_pct", byteCut},
                       {"word_cut_pct", wordCut},
                       {"attacks_detected", double(attacks.detected)}});

    std::vector<Row> all = byteRows;
    all.insert(all.end(), wordRows.begin(), wordRows.end());
    writeJson(all, byteCut, wordCut, attacks);

    if (attacks.detected != attacks.total || attacks.falsePositives) {
        std::fprintf(stderr, "bench_overhead: attack sweep FAILED\n");
        return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
