/**
 * @file
 * Decoupled async taint tier payoff (see docs/ASYNC-TAINT.md): host
 * time to run the taint-dense SPEC rows with the best synchronous
 * configuration (the PR 4 fused engine plus the taint-clean fast
 * path) against the trace-ring tier, where the engine executes the
 * uninstrumented stream and a consumer thread replays propagation.
 *
 * The fast path is bounded by a workload's taint share — bzip2 sits
 * at ~0.57 and vpr ~0.53 in BENCH_fastpath.json — so those rows are
 * exactly where decoupling should pay: the engine sheds the inline
 * tag work entirely and the cost moves to a second host thread. The
 * comparable quantity is host seconds inside Machine::run() for the
 * same workload; every row verifies the security observables (exit
 * status, alert count) are identical both ways.
 *
 * The lag is not hidden: each row reports the ring-stall count and
 * the p50/p99 fence lag (events outstanding when the engine had to
 * synchronize), and a dedicated section replays all eight attack
 * scenarios under the tier and reports the p50/p99/max lag-bounded
 * detection latency in host nanoseconds — the time between the
 * consumer flagging the violation and the engine observing it at the
 * next policy-check fence.
 *
 * `--smoke` runs only the bzip2 and vpr rows and exits non-zero when
 * fewer than two of them clear 1.2x the synchronous engine — the
 * perf-smoke-async CI tripwire.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "support/stats.hh"
#include "workloads/attacks.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

struct Measurement
{
    uint64_t instructions = 0;
    size_t alerts = 0;
    int64_t exitCode = 0;
    double seconds = 0;
    // Async-only counters (zero on the synchronous side).
    uint64_t events = 0;
    uint64_t fences = 0;
    uint64_t ringStalls = 0;
    uint64_t fenceLagP50 = 0; ///< events outstanding at a fence
    uint64_t fenceLagP99 = 0;
    uint64_t ringDepthMax = 0;
    bool inlineConsumer = false; ///< resolved placement (Auto folds
                                 ///< to inline on single-hart hosts)

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

struct Row
{
    std::string name;
    Measurement sync;  ///< PR 4 engine: fused + taint-clean fast path
    Measurement async; ///< trace-ring tier, uninstrumented stream

    /** Host-time speedup running the identical workload. */
    double speedup() const
    {
        return async.seconds > 0 ? sync.seconds / async.seconds : 0;
    }
};

/** Repeats per configuration; minimum host time wins (see
 * bench_interp for why). */
int repeats = 3;

Measurement
timeSpec(const SpecKernel &kernel, const SpecRunConfig &config)
{
    Measurement m;
    for (int rep = 0; rep < repeats; ++rep) {
        SpecRun run = runSpecKernel(kernel, config);
        const RunResult &result = run.result;
        if (!result.ok()) {
            std::fprintf(stderr, "bench_async: %s failed (%s: %s)\n",
                         kernel.shortName.c_str(),
                         faultKindName(result.fault.kind),
                         result.fault.detail.c_str());
            std::exit(1);
        }
        if (rep == 0) {
            m.instructions = result.instructions;
            m.alerts = result.alerts.size();
            m.exitCode = result.exitCode;
            m.seconds = run.runSeconds;
            m.events = result.stats.get("dift.events");
            m.fences = result.stats.get("dift.fences");
            m.inlineConsumer =
                result.stats.gauge("dift.consumer.inline") != 0;
            if (const Histogram *lag =
                    result.stats.histogram("dift.fence.lag.events")) {
                m.fenceLagP50 = lag->quantile(0.50);
                m.fenceLagP99 = lag->quantile(0.99);
            }
            if (const Histogram *depth =
                    result.stats.histogram("dift.ring.depth"))
                m.ringDepthMax = depth->max();
            continue;
        }
        if (result.instructions != m.instructions ||
            result.alerts.size() != m.alerts) {
            std::fprintf(stderr,
                         "bench_async: NON-DETERMINISTIC repeat on %s\n",
                         kernel.shortName.c_str());
            std::exit(1);
        }
        if (run.runSeconds < m.seconds)
            m.seconds = run.runSeconds;
        // Stall counts vary with host scheduling; keep the worst
        // repeat so the report never understates backpressure.
        uint64_t stalls = result.stats.get("dift.ring.stalls");
        if (stalls > m.ringStalls)
            m.ringStalls = stalls;
    }
    return m;
}

/** Security observables must not move when the tier takes over. */
void
checkIdentity(const Row &row)
{
    if (row.sync.alerts != row.async.alerts ||
        row.sync.exitCode != row.async.exitCode) {
        std::fprintf(stderr,
                     "bench_async: VERDICT MISMATCH on %s: "
                     "%zu alerts/exit %lld sync vs %zu/%lld async\n",
                     row.name.c_str(), row.sync.alerts,
                     (long long)row.sync.exitCode, row.async.alerts,
                     (long long)row.async.exitCode);
        std::exit(1);
    }
}

Row
measureKernel(const std::string &shortName)
{
    const SpecKernel &kernel = specKernel(shortName);
    Row row;
    row.name = "spec/" + shortName;

    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    config.taintInput = true;
    config.engine = ExecEngine::Predecoded;

    // Synchronous side: the strongest inline configuration we have —
    // fused taint micro-ops plus the dual-version fast path (PR 4).
    config.fastPath = true;
    row.sync = timeSpec(kernel, config);

    // Async side: the fast path hands the taint tier to the consumer
    // thread wholesale (the two are mutually exclusive by design).
    config.fastPath = false;
    config.async.enabled = true;
    row.async = timeSpec(kernel, config);

    checkIdentity(row);
    return row;
}

/**
 * Lag-bounded detection latency: replay every attack scenario under
 * the tier and collect the host nanoseconds between the consumer
 * flagging the violation and the engine observing it at its next
 * policy fence (`dift.lag.detect.ns`, one sample per condemned run).
 */
Histogram
measureDetectionLatency(int rounds)
{
    Histogram latency;
    dift::AsyncTaintOptions async;
    async.enabled = true;
    // Force the threaded consumer: with the inline placement (the
    // Auto resolution on single-hart hosts) detection is immediate
    // and the "latency" would only time the fence bookkeeping.
    async.consumer = dift::AsyncConsumer::Thread;
    for (int round = 0; round < rounds; ++round) {
        for (const AttackScenario &scenario : attackScenarios()) {
            AttackRun run = runAttackScenario(
                scenario, true, Granularity::Byte,
                ExecEngine::Predecoded, {}, false, async);
            if (!run.detected) {
                std::fprintf(stderr,
                             "bench_async: attack %s NOT DETECTED "
                             "under the async tier\n",
                             scenario.name.c_str());
                std::exit(1);
            }
            const Histogram *h =
                run.result.stats.histogram("dift.lag.detect.ns");
            if (h)
                latency.merge(*h);
        }
    }
    return latency;
}

void
writeJson(const std::vector<Row> &rows, const Histogram &latency)
{
    FILE *f = std::fopen("BENCH_async.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_async: cannot write BENCH_async.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", "
            "\"mips_sync\": %.2f, \"mips_async\": %.2f, "
            "\"host_speedup\": %.3f, "
            "\"instrs_sync\": %llu, \"instrs_async\": %llu, "
            "\"events\": %llu, \"fences\": %llu, "
            "\"ring_stalls\": %llu, "
            "\"fence_lag_p50_events\": %llu, "
            "\"fence_lag_p99_events\": %llu, "
            "\"ring_depth_max\": %llu, "
            "\"consumer\": \"%s\"}%s\n",
            r.name.c_str(), r.sync.mips(), r.async.mips(), r.speedup(),
            (unsigned long long)r.sync.instructions,
            (unsigned long long)r.async.instructions,
            (unsigned long long)r.async.events,
            (unsigned long long)r.async.fences,
            (unsigned long long)r.async.ringStalls,
            (unsigned long long)r.async.fenceLagP50,
            (unsigned long long)r.async.fenceLagP99,
            (unsigned long long)r.async.ringDepthMax,
            r.async.inlineConsumer ? "inline" : "thread",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"detect_latency\": {"
                 "\"consumer\": \"thread\", "
                 "\"samples\": %llu, \"p50_ns\": %llu, "
                 "\"p99_ns\": %llu, \"max_ns\": %llu}\n}\n",
                 (unsigned long long)latency.count(),
                 (unsigned long long)latency.quantile(0.50),
                 (unsigned long long)latency.quantile(0.99),
                 (unsigned long long)latency.max());
    std::fclose(f);
    std::printf("wrote BENCH_async.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    std::printf("\n=== Decoupled async taint tier: host time, "
                "sync fast-path engine vs trace-ring consumer ===\n");
    std::printf("%-12s %11s %11s %9s %8s %10s %10s\n", "workload",
                "MIPS sync", "MIPS async", "speedup", "stalls",
                "lag p50", "lag p99");
    benchutil::rule(76);

    // The floor rows are the taint-dense kernels where the fast path
    // is bounded by taint share; the full run covers every kernel so
    // the trajectory records where decoupling does NOT pay too.
    std::vector<std::string> names = {"bzip2", "vpr"};
    if (!smoke) {
        names.clear();
        for (const SpecKernel &kernel : specKernels())
            names.push_back(kernel.shortName);
    }

    std::vector<Row> rows;
    for (const std::string &name : names)
        rows.push_back(measureKernel(name));

    for (const Row &r : rows) {
        std::printf("%-12s %11.1f %11.1f %8.2fx %8llu %10llu %10llu\n",
                    r.name.c_str(), r.sync.mips(), r.async.mips(),
                    r.speedup(),
                    (unsigned long long)r.async.ringStalls,
                    (unsigned long long)r.async.fenceLagP50,
                    (unsigned long long)r.async.fenceLagP99);
        registerMetricRow("async/" + r.name,
                          {{"mips_sync", r.sync.mips()},
                           {"mips_async", r.async.mips()},
                           {"host_speedup_X", r.speedup()},
                           {"ring_stalls", double(r.async.ringStalls)},
                           {"fence_lag_p99_events",
                            double(r.async.fenceLagP99)}});
    }
    benchutil::rule(76);
    std::printf("(verdicts verified identical on every row; lag "
                "columns are fence-lag percentiles in events)\n\n");

    Histogram latency = measureDetectionLatency(smoke ? 2 : 5);
    std::printf("lag-bounded detection latency over %llu condemned "
                "runs (8 attacks x %d rounds):\n"
                "  p50 %llu ns   p99 %llu ns   max %llu ns\n\n",
                (unsigned long long)latency.count(), smoke ? 2 : 5,
                (unsigned long long)latency.quantile(0.50),
                (unsigned long long)latency.quantile(0.99),
                (unsigned long long)latency.max());
    registerMetricRow("async/detect_latency",
                      {{"p50_ns", double(latency.quantile(0.50))},
                       {"p99_ns", double(latency.quantile(0.99))},
                       {"max_ns", double(latency.max())}});

    writeJson(rows, latency);

    if (smoke) {
        int cleared = 0;
        for (const Row &r : rows)
            cleared += r.speedup() >= 1.2;
        if (cleared < 2) {
            for (const Row &r : rows) {
                std::fprintf(stderr,
                             "perf-smoke-async: %s %.2fx\n",
                             r.name.c_str(), r.speedup());
            }
            std::fprintf(stderr,
                         "perf-smoke-async FAIL: only %d taint-dense "
                         "row(s) cleared 1.2x over the synchronous "
                         "engine (need 2)\n",
                         cleared);
            return 1;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
