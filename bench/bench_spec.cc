/**
 * @file
 * Figure 7: SPEC-INT2000 slowdown under SHIFT.
 *
 * Four bars per benchmark — tracking at byte/word granularity with the
 * input tagged unsafe (tainted) or safe (clean) — normalized to the
 * uninstrumented binary, plus the geometric mean. Paper reference:
 * byte-unsafe average 2.81X (range 1.32X-4.73X), word-unsafe 2.27X
 * (1.34X-3.80X).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

struct Bars
{
    double byteUnsafe, byteSafe, wordUnsafe, wordSafe;
};

uint64_t
cyclesFor(const SpecKernel &kernel, TrackingMode mode, Granularity g,
          bool unsafe)
{
    SpecRunConfig config;
    config.mode = mode;
    config.granularity = g;
    config.taintInput = unsafe;
    SpecRun run = runSpecKernel(kernel, config);
    if (!run.result.ok()) {
        std::fprintf(stderr, "%s: run failed (%s)\n",
                     kernel.name.c_str(),
                     faultKindName(run.result.fault.kind));
        std::exit(1);
    }
    return run.result.cycles;
}

void
printFigure7()
{
    std::printf("\n=== Figure 7: SPEC-INT2000 slowdown vs uninstrumented "
                "(simulated cycles) ===\n");
    std::printf("%-12s %12s %12s %12s %12s\n", "benchmark",
                "byte-unsafe", "byte-safe", "word-unsafe", "word-safe");
    benchutil::rule(64);

    std::vector<double> bu, bs, wu, ws;
    for (const SpecKernel &kernel : specKernels()) {
        uint64_t base =
            cyclesFor(kernel, TrackingMode::None, Granularity::Byte,
                      true);
        Bars bars;
        bars.byteUnsafe =
            double(cyclesFor(kernel, TrackingMode::Shift,
                             Granularity::Byte, true)) / base;
        bars.byteSafe =
            double(cyclesFor(kernel, TrackingMode::Shift,
                             Granularity::Byte, false)) / base;
        bars.wordUnsafe =
            double(cyclesFor(kernel, TrackingMode::Shift,
                             Granularity::Word, true)) / base;
        bars.wordSafe =
            double(cyclesFor(kernel, TrackingMode::Shift,
                             Granularity::Word, false)) / base;

        std::printf("%-12s %11.2fX %11.2fX %11.2fX %11.2fX\n",
                    kernel.name.c_str(), bars.byteUnsafe, bars.byteSafe,
                    bars.wordUnsafe, bars.wordSafe);
        bu.push_back(bars.byteUnsafe);
        bs.push_back(bars.byteSafe);
        wu.push_back(bars.wordUnsafe);
        ws.push_back(bars.wordSafe);

        registerMetricRow("fig7/" + kernel.shortName,
                          {{"byte_unsafe_X", bars.byteUnsafe},
                           {"byte_safe_X", bars.byteSafe},
                           {"word_unsafe_X", bars.wordUnsafe},
                           {"word_safe_X", bars.wordSafe}});
    }
    benchutil::rule(64);
    std::printf("%-12s %11.2fX %11.2fX %11.2fX %11.2fX\n", "geo.mean",
                geomean(bu), geomean(bs), geomean(wu), geomean(ws));
    std::printf("paper:       byte-unsafe 2.81X (1.32-4.73), "
                "word-unsafe 2.27X (1.34-3.80)\n\n");

    registerMetricRow("fig7/geomean", {{"byte_unsafe_X", geomean(bu)},
                                       {"byte_safe_X", geomean(bs)},
                                       {"word_unsafe_X", geomean(wu)},
                                       {"word_safe_X", geomean(ws)}});
}

} // namespace

int
main(int argc, char **argv)
{
    printFigure7();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
