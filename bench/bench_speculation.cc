/**
 * @file
 * Control speculation × SHIFT (paper section 3.3.4).
 *
 * The paper observes that SHIFT can coexist with compiler control
 * speculation by treating every chk.s failure — deferred exception OR
 * taint — as a speculation failure that reverts to tracked recovery
 * code, "at the cost of some false positives [speculation failures]",
 * so "control speculation is effective only when there is little
 * tainted data involved."
 *
 * This bench quantifies that: the SPEC kernels are compiled with and
 * without the speculating compiler, with clean and tainted input,
 * under SHIFT. Expected shape: speculation helps on clean data (it
 * hides load-use stalls) and the benefit shrinks or inverts as taint
 * forces loads through recovery.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

uint64_t
cyclesFor(const SpecKernel &kernel, bool speculate, bool taint)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.granularity = Granularity::Word;
    options.policy.taintFile = taint;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.speculate = speculate;

    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    RunResult run = session.run();
    if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s (%s)\n",
                     kernel.name.c_str(),
                     faultKindName(run.fault.kind),
                     run.fault.detail.c_str());
        std::exit(1);
    }
    return run.cycles;
}

void
printTable()
{
    std::printf("\n=== Control speculation under SHIFT (word level): "
                "speculated / unspeculated cycles ===\n");
    std::printf("%-12s %14s %14s %18s\n", "benchmark", "clean input",
                "tainted input", "taint penalty");
    benchutil::rule(62);

    std::vector<double> cleanR, taintR;
    for (const SpecKernel &kernel : specKernels()) {
        double clean = double(cyclesFor(kernel, true, false)) /
                       double(cyclesFor(kernel, false, false));
        double tainted = double(cyclesFor(kernel, true, true)) /
                         double(cyclesFor(kernel, false, true));
        cleanR.push_back(clean);
        taintR.push_back(tainted);
        std::printf("%-12s %13.4f %14.4f %17.2f%%\n",
                    kernel.name.c_str(), clean, tainted,
                    (tainted - clean) * 100.0);
        registerMetricRow("speculation/" + kernel.shortName,
                          {{"clean_ratio", clean},
                           {"tainted_ratio", tainted}});
    }
    benchutil::rule(62);
    std::printf("%-12s %13.4f %14.4f\n", "geo.mean", geomean(cleanR),
                geomean(taintR));
    std::printf("< 1.0 means speculation pays off; taint shifts the "
                "ratio up (paper section 3.3.4)\n\n");
    registerMetricRow("speculation/geomean",
                      {{"clean_ratio", geomean(cleanR)},
                       {"tainted_ratio", geomean(taintR)}});
}

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
