/**
 * @file
 * JIT tier throughput: host MIPS of the copy-and-patch compiled code
 * against the fused interpreter on the same fused instruction stream
 * (src/jit, docs/JIT.md) — the trajectory metric for JIT perf work.
 *
 * Both arms run the predecoded engine under full SHIFT tracking at
 * byte granularity; the only difference is SessionOptions::jit. The
 * harness verifies on every row that the arms agree bit-for-bit on
 * simulated cycles, instructions and alerts (the tier's contract —
 * a fast JIT that drifts from the interpreter is worthless), prints
 * the table with the honest deopt/bailout counts, registers the
 * metrics as google-benchmark counters and writes BENCH_jit.json.
 *
 * Compile time is NOT excluded: each timed run builds a fresh
 * session, pays the promotion warm-up and the compile inside
 * Machine::run(), exactly as a first-run user would.
 *
 * `--smoke` runs two SPEC kernels + a small httpd serve once and
 * exits non-zero when the JIT's geomean speedup over the interpreter
 * on the SPEC rows falls below 2.0x (the perf-smoke-jit target).
 * On hosts without the backend (non-x86-64, -DSHIFT_ENABLE_JIT=OFF)
 * it prints a notice and exits zero — there is nothing to regress.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/machine.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

struct Measurement
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    size_t alerts = 0;
    double seconds = 0;
    /** Tier counters from the last run (deterministic across runs). */
    uint64_t compiled = 0;
    uint64_t entered = 0;
    uint64_t deopts = 0;
    uint64_t bailouts = 0;

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

struct Row
{
    std::string name;
    bool inGeomean = true; ///< SPEC rows only gate the tripwire
    Measurement interp;
    Measurement jit;
    /** Background + lazy arm: compile off the serving thread, one
     *  superblock at a time. Same simulation; the serving thread
     *  never stalls on a compile and blocks never entered are never
     *  compiled, so on short rows most of the sync arm's compile
     *  cost disappears. */
    Measurement jitBg;

    double speedup() const
    {
        return interp.mips() > 0 ? jit.mips() / interp.mips() : 0;
    }

    double speedupBg() const
    {
        return interp.mips() > 0 ? jitBg.mips() / interp.mips() : 0;
    }

    /**
     * Fraction of the sync jit arm's wall time that `--jit-compile=bg
     * --jit-lazy` eliminated: (t_sync - t_bg) / t_sync. On short rows
     * the sync arm is compile-dominated, so this reads as the share
     * of compile cost the background tier moved off the serving path;
     * on long rows both arms converge and it tends to zero. Clamped:
     * measurement jitter on an amortized row can make it mildly
     * negative.
     */
    double compileShareSaved() const
    {
        if (jit.seconds <= 0)
            return 0;
        double saved = (jit.seconds - jitBg.seconds) / jit.seconds;
        return saved > 0 ? saved : 0;
    }
};

int repeats = 3;
uint64_t minSampleInstrs = 4'000'000;

/** Same sampling discipline as bench_interp::timeRun (see there). */
template <typename Fn>
Measurement
timeRun(Fn &&fn)
{
    Measurement m;
    auto checkOk = [](const RunResult &result) {
        if (!result.ok()) {
            std::fprintf(stderr, "bench_jit: run failed (%s: %s)\n",
                         faultKindName(result.fault.kind),
                         result.fault.detail.c_str());
            std::exit(1);
        }
    };
    auto warm = fn();
    checkOk(warm.result);
    m.instructions = warm.result.instructions;
    m.cycles = warm.result.cycles;
    m.alerts = warm.result.alerts.size();
    m.compiled = warm.result.stats.get("jit.compiled");
    m.entered = warm.result.stats.get("jit.entered");
    m.deopts = warm.result.stats.get("jit.deopts");
    m.bailouts = warm.result.stats.get("jit.bailouts");
    int runsPerSample = benchutil::runsForInstructionFloor(
        m.instructions, minSampleInstrs);
    for (int rep = 0; rep < repeats; ++rep) {
        double sampleSeconds = 0;
        for (int i = 0; i < runsPerSample; ++i) {
            auto run = fn();
            checkOk(run.result);
            if (run.result.instructions != m.instructions ||
                run.result.cycles != m.cycles ||
                run.result.alerts.size() != m.alerts) {
                std::fprintf(stderr,
                             "bench_jit: NON-DETERMINISTIC repeat\n");
                std::exit(1);
            }
            sampleSeconds += run.runSeconds;
        }
        double perRun = sampleSeconds / runsPerSample;
        if (rep == 0 || perRun < m.seconds)
            m.seconds = perRun;
    }
    return m;
}

/** Abort loudly when the tiers disagree — speed without fidelity. */
void
checkIdentical(const Row &row)
{
    auto mismatch = [&](const Measurement &arm, const char *what) {
        if (row.interp.cycles != arm.cycles ||
            row.interp.instructions != arm.instructions ||
            row.interp.alerts != arm.alerts) {
            std::fprintf(stderr,
                         "bench_jit: TIER MISMATCH on %s: interp "
                         "{cycles=%llu instrs=%llu alerts=%zu} vs %s "
                         "{cycles=%llu instrs=%llu alerts=%zu}\n",
                         row.name.c_str(),
                         (unsigned long long)row.interp.cycles,
                         (unsigned long long)row.interp.instructions,
                         row.interp.alerts, what,
                         (unsigned long long)arm.cycles,
                         (unsigned long long)arm.instructions,
                         arm.alerts);
            std::exit(1);
        }
    };
    mismatch(row.jit, "jit");
    mismatch(row.jitBg, "jit-bg");
}

Row
measureSpec(const SpecKernel &kernel)
{
    Row row;
    row.name = "spec/" + kernel.shortName;
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    config.taintInput = true;

    config.jit = false;
    row.interp = timeRun([&] { return runSpecKernel(kernel, config); });
    config.jit = true;
    row.jit = timeRun([&] { return runSpecKernel(kernel, config); });
    config.jitBackground = true;
    config.jitLazy = true;
    row.jitBg = timeRun([&] { return runSpecKernel(kernel, config); });
    checkIdentical(row);
    return row;
}

/**
 * The serving row. The full-bench row uses enough requests to reach
 * steady state: the timed window includes one-time session work
 * (decode, instrumentation, JIT warm-up and compilation), and at ~50
 * requests that warm-up diluted the arms toward parity — the row
 * measured session startup, not serving throughput. At 200 requests
 * the serving loop dominates and the row reports what a long-lived
 * server sees. The smoke row stays at 5 requests deliberately: its
 * compile-dominated short window is what the compileShareSaved
 * tripwire needs.
 */
Row
measureHttpd(int requests)
{
    Row row;
    row.name = "httpd";
    row.inGeomean = false; // reported, but the floor gates SPEC only
    HttpdConfig config;
    config.mode = TrackingMode::Shift;
    config.requests = requests;

    config.jit = false;
    row.interp = timeRun([&] { return runHttpd(config); });
    config.jit = true;
    row.jit = timeRun([&] { return runHttpd(config); });
    config.jitBackground = true;
    config.jitLazy = true;
    row.jitBg = timeRun([&] { return runHttpd(config); });
    checkIdentical(row);
    return row;
}

void
writeJson(const std::vector<Row> &rows, double geomeanSpeedup)
{
    FILE *f = std::fopen("BENCH_jit.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_jit: cannot write BENCH_jit.json\n");
        return;
    }
    std::fprintf(f, "{\n  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"instructions\": %llu, "
            "\"mips_interp\": %.2f, \"mips_jit\": %.2f, "
            "\"speedup\": %.3f, \"mips_jit_bg\": %.2f, "
            "\"speedup_bg\": %.3f, \"compile_share_saved\": %.3f, "
            "\"jit_compiled\": %llu, "
            "\"jit_entered\": %llu, \"jit_deopts\": %llu, "
            "\"jit_bailouts\": %llu, \"jit_compiled_bg\": %llu}%s\n",
            r.name.c_str(), (unsigned long long)r.jit.instructions,
            r.interp.mips(), r.jit.mips(), r.speedup(), r.jitBg.mips(),
            r.speedupBg(), r.compileShareSaved(),
            (unsigned long long)r.jit.compiled,
            (unsigned long long)r.jit.entered,
            (unsigned long long)r.jit.deopts,
            (unsigned long long)r.jit.bailouts,
            (unsigned long long)r.jitBg.compiled,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"geomean_speedup_spec\": %.3f\n}\n",
                 geomeanSpeedup);
    std::fclose(f);
    std::printf("wrote BENCH_jit.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    if (smoke) {
        // Keep the min-of-3 discipline even in smoke mode: the
        // tripwire compares two measured tiers, and a single sample
        // per tier makes the ratio hostage to host scheduling noise.
        minSampleInstrs = 2'000'000;
    }

    if (!Machine::jitAvailable()) {
        std::printf("bench_jit: JIT backend unavailable on this "
                    "host/build — nothing to measure\n");
        return 0;
    }

    std::printf("\n=== JIT tier throughput: host MIPS, fused "
                "interpreter vs compiled code ===\n");
    std::printf("%-14s %8s %9s %8s %8s %7s %7s %7s %7s %8s\n",
                "workload", "Minstrs", "MIPSintp", "MIPSjit", "MIPSbg",
                "spdup", "spdupBg", "cmplSv", "deopts", "bailouts");
    benchutil::rule(92);

    std::vector<Row> rows;
    size_t specCount = smoke ? 2 : specKernels().size();
    for (size_t i = 0; i < specCount; ++i)
        rows.push_back(measureSpec(specKernels()[i]));
    rows.push_back(measureHttpd(smoke ? 5 : 200));

    std::vector<double> specSpeedups;
    for (const Row &r : rows) {
        std::printf(
            "%-14s %8.1f %9.1f %8.1f %8.1f %6.2fx %6.2fx %6.0f%% %7llu "
            "%8llu\n",
            r.name.c_str(), double(r.jit.instructions) / 1e6,
            r.interp.mips(), r.jit.mips(), r.jitBg.mips(), r.speedup(),
            r.speedupBg(), r.compileShareSaved() * 100,
            (unsigned long long)r.jit.deopts,
            (unsigned long long)r.jit.bailouts);
        if (r.inGeomean)
            specSpeedups.push_back(r.speedup());
        registerMetricRow("jit/" + r.name,
                          {{"mips_interp", r.interp.mips()},
                           {"mips_jit", r.jit.mips()},
                           {"speedup_X", r.speedup()},
                           {"mips_jit_bg", r.jitBg.mips()},
                           {"speedup_bg_X", r.speedupBg()},
                           {"compile_share_saved", r.compileShareSaved()},
                           {"deopts", double(r.jit.deopts)},
                           {"bailouts", double(r.jit.bailouts)}});
    }
    benchutil::rule(92);
    double gm = geomean(specSpeedups);
    std::printf("%-14s %30s %7.2fx   (SPEC rows only, sync arm)\n",
                "geo.mean", "", gm);
    std::printf("(tiers verified cycle- and alert-identical on every "
                "row; bg arm = --jit-compile=bg --jit-lazy)\n\n");

    registerMetricRow("jit/geomean", {{"speedup_X", gm}});
    writeJson(rows, gm);

    // The tripwire floor is deliberately below the ~2x the committed
    // BENCH_jit.json demonstrates: the smoke rows are short (2M
    // instrs), so compile cost is a large fraction of the JIT arm and
    // the run is noisy on loaded hosts. 1.5x catches a broken tier
    // without flaking on measurement jitter.
    if (smoke && gm < 1.5) {
        std::fprintf(stderr,
                     "perf-smoke-jit FAIL: compiled code only %.2fx "
                     "interpreter throughput on SPEC (floor 1.5x)\n",
                     gm);
        return 1;
    }
    // Serving-path guards on the httpd row (the last row pushed).
    // The 5-request smoke row is compile-dominated by design: the
    // sync arm runs ~0.3x interpreter speed here (it compiles the
    // whole server for 5 requests), and the background+lazy arm
    // recovers to ~0.7x by keeping compilation off the serving
    // thread and compiling only entered blocks. A broken bg tier
    // (worker not draining, lazy slots dead, builtin return linking
    // lost) collapses back to the sync arm's ~0.3x, so 0.45x
    // separates the two regimes with room for host noise. The
    // share-saved floor is a third against the ~50-60% the bg arm
    // actually removes from the sync row's wall time.
    if (smoke) {
        const Row &httpd = rows.back();
        if (httpd.speedupBg() < 0.45) {
            std::fprintf(stderr,
                         "perf-smoke-jit FAIL: httpd bg arm at %.2fx "
                         "interpreter (floor 0.45x) — builtin return "
                         "linking or lazy compilation regressed\n",
                         httpd.speedupBg());
            return 1;
        }
        if (httpd.compileShareSaved() < 0.33) {
            std::fprintf(stderr,
                         "perf-smoke-jit FAIL: bg+lazy arm saved only "
                         "%.0f%% of the sync httpd row's wall time "
                         "(floor 33%%) — background compilation "
                         "regressed\n",
                         httpd.compileShareSaved() * 100);
            return 1;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
