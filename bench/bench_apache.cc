/**
 * @file
 * Figure 6: web-server (Apache) overhead under SHIFT.
 *
 * Latency and throughput relative to the uninstrumented server for
 * requested file sizes of 4/8/16/512 KB, at byte and word tracking
 * granularity. Paper reference: ~1% geometric-mean overhead, largest
 * (4.2%) for 4 KB files because I/O is a smaller share there.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/httpd.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

constexpr int kRequests = 25;

HttpdRun
serve(TrackingMode mode, Granularity g, uint64_t size)
{
    HttpdConfig config;
    config.mode = mode;
    config.granularity = g;
    config.fileSize = size;
    config.requests = kRequests;
    HttpdRun run = runHttpd(config);
    if (!run.responsesOk) {
        std::fprintf(stderr, "httpd run failed (size %llu)\n",
                     static_cast<unsigned long long>(size));
        std::exit(1);
    }
    return run;
}

void
printFigure6()
{
    std::printf("\n=== Figure 6: Apache-like server, relative "
                "performance vs uninstrumented ===\n");
    std::printf("%-9s %14s %14s %17s %17s\n", "filesize",
                "latency(byte)", "latency(word)", "throughput(byte)",
                "throughput(word)");
    benchutil::rule(76);

    std::vector<double> latB, latW, thrB, thrW;
    for (uint64_t kb : {4, 8, 16, 512}) {
        uint64_t size = kb * 1024;
        HttpdRun base = serve(TrackingMode::None, Granularity::Byte,
                              size);
        HttpdRun byteRun = serve(TrackingMode::Shift, Granularity::Byte,
                                 size);
        HttpdRun wordRun = serve(TrackingMode::Shift, Granularity::Word,
                                 size);

        // Relative latency: instrumented / base (>= 1). Relative
        // throughput: instrumented / base (<= 1).
        double lb = byteRun.latencyCycles / base.latencyCycles;
        double lw = wordRun.latencyCycles / base.latencyCycles;
        double tb = byteRun.throughput / base.throughput;
        double tw = wordRun.throughput / base.throughput;
        latB.push_back(lb);
        latW.push_back(lw);
        thrB.push_back(tb);
        thrW.push_back(tw);

        std::printf("%6lluKB %13.4f %14.4f %17.4f %17.4f\n",
                    static_cast<unsigned long long>(kb), lb, lw, tb, tw);
        registerMetricRow(
            "fig6/" + std::to_string(kb) + "KB",
            {{"rel_latency_byte", lb},
             {"rel_latency_word", lw},
             {"rel_throughput_byte", tb},
             {"rel_throughput_word", tw},
             {"overhead_byte_pct", (lb - 1.0) * 100.0}});
    }
    benchutil::rule(76);
    double meanOverhead =
        (geomean(latB) + geomean(latW)) / 2.0 - 1.0;
    std::printf("geometric mean overhead (latency, byte+word): "
                "%.2f%%\n", meanOverhead * 100.0);
    std::printf("paper: ~1%% average; 4KB worst at ~4.2%%\n\n");

    registerMetricRow("fig6/geomean",
                      {{"mean_overhead_pct", meanOverhead * 100.0}});
}

} // namespace

int
main(int argc, char **argv)
{
    printFigure6();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
