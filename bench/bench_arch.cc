/**
 * @file
 * Figure 8: impact of the proposed architectural enhancements.
 *
 * Compares SHIFT as-is (byte/word-unsafe) against (1) hardware
 * set/clear-NaT instructions and (2) additionally a NaT-aware compare,
 * on the SPEC kernels with tainted input. Paper reference: set/clear
 * alone removes ~16% of the slowdown; both remove 49%/47% (byte/word),
 * landing at 2.32X / 1.80X.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::geomean;
using benchutil::registerMetricRow;

uint64_t
cyclesFor(const SpecKernel &kernel, TrackingMode mode, Granularity g,
          CpuFeatures features = {})
{
    SpecRunConfig config;
    config.mode = mode;
    config.granularity = g;
    config.taintInput = true;
    config.features = features;
    SpecRun run = runSpecKernel(kernel, config);
    if (!run.result.ok()) {
        std::fprintf(stderr, "%s failed\n", kernel.name.c_str());
        std::exit(1);
    }
    return run.result.cycles;
}

void
printFigure8()
{
    CpuFeatures setClr;
    setClr.natSetClear = true;
    CpuFeatures both = setClr;
    both.natAwareCompare = true;

    std::printf("\n=== Figure 8: slowdown with architectural "
                "enhancements (unsafe input) ===\n");
    std::printf("%-12s | %9s %9s %9s | %9s %9s %9s\n", "benchmark",
                "byte", "b+setclr", "b+both", "word", "w+setclr",
                "w+both");
    benchutil::rule(78);

    std::vector<double> b0, b1, b2, w0, w1, w2;
    for (const SpecKernel &kernel : specKernels()) {
        uint64_t base = cyclesFor(kernel, TrackingMode::None,
                                  Granularity::Byte);
        double bPlain = double(cyclesFor(kernel, TrackingMode::Shift,
                                         Granularity::Byte)) / base;
        double bSet = double(cyclesFor(kernel, TrackingMode::Shift,
                                       Granularity::Byte, setClr)) /
                      base;
        double bBoth = double(cyclesFor(kernel, TrackingMode::Shift,
                                        Granularity::Byte, both)) /
                       base;
        double wPlain = double(cyclesFor(kernel, TrackingMode::Shift,
                                         Granularity::Word)) / base;
        double wSet = double(cyclesFor(kernel, TrackingMode::Shift,
                                       Granularity::Word, setClr)) /
                      base;
        double wBoth = double(cyclesFor(kernel, TrackingMode::Shift,
                                        Granularity::Word, both)) /
                       base;

        std::printf("%-12s | %8.2fX %8.2fX %8.2fX | %8.2fX %8.2fX "
                    "%8.2fX\n",
                    kernel.name.c_str(), bPlain, bSet, bBoth, wPlain,
                    wSet, wBoth);
        b0.push_back(bPlain);
        b1.push_back(bSet);
        b2.push_back(bBoth);
        w0.push_back(wPlain);
        w1.push_back(wSet);
        w2.push_back(wBoth);

        registerMetricRow("fig8/" + kernel.shortName,
                          {{"byte_X", bPlain},
                           {"byte_setclr_X", bSet},
                           {"byte_both_X", bBoth},
                           {"word_X", wPlain},
                           {"word_setclr_X", wSet},
                           {"word_both_X", wBoth}});
    }
    benchutil::rule(78);
    double gb0 = geomean(b0), gb1 = geomean(b1), gb2 = geomean(b2);
    double gw0 = geomean(w0), gw1 = geomean(w1), gw2 = geomean(w2);
    std::printf("%-12s | %8.2fX %8.2fX %8.2fX | %8.2fX %8.2fX %8.2fX\n",
                "geo.mean", gb0, gb1, gb2, gw0, gw1, gw2);
    // "Reduction of performance slowdown is the difference between the
    // original and new performance slowdowns" (paper section 6.3).
    std::printf("slowdown reduction: set/clr %.0f%% (byte) / %.0f%% "
                "(word); both %.0f%% / %.0f%%\n",
                (gb0 - gb1) * 100.0, (gw0 - gw1) * 100.0,
                (gb0 - gb2) * 100.0, (gw0 - gw2) * 100.0);
    std::printf("paper: set/clr reduces slowdown by ~16 percentage "
                "points; both lands at 2.32X (byte) / 1.80X (word)\n\n");

    registerMetricRow("fig8/geomean",
                      {{"byte_X", gb0},
                       {"byte_setclr_X", gb1},
                       {"byte_both_X", gb2},
                       {"word_X", gw0},
                       {"word_setclr_X", gw1},
                       {"word_both_X", gw2}});
}

} // namespace

int
main(int argc, char **argv)
{
    printFigure8();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
