/**
 * @file
 * Observability-plane cost (docs/OBSERVABILITY.md): what the flight
 * recorder charges the interpreter hot loop, measured on the httpd
 * workload in three configurations:
 *
 *  - baseline: recorder off. run() dispatches the kObs=false template
 *    instantiation, whose emit sites compile out entirely — the
 *    production configuration.
 *  - dispatch: recorder still off, but Machine::setObsDispatchForced
 *    pins the kObs=true instantiation, so every emit site executes its
 *    null-observer branch. This is the guarded quantity: the whole
 *    off-by-default contract is that these branches are all a
 *    disabled recorder could ever cost, and they must be noise.
 *  - recording: the recorder enabled with the default ring, tracing
 *    for real (reported for scale, not floored — tracing is opt-in).
 *
 * Two JIT rows (PR 7/8 postdate the original measurement) complete
 * the picture: baseline-jit is the compiled tier with the recorder
 * off, and recording-jit enables the recorder on the same
 * configuration — which forces the interpreter (full observability
 * needs every retired micro-op, so the JIT gate refuses while a
 * recorder is attached; docs/JIT.md). The recording-jit overhead is
 * therefore the honest price of turning tracing on in a JIT-serving
 * deployment: the recorder's own cost plus the forfeited compiled
 * tier. Reported, not floored.
 *
 * `--smoke` runs baseline and dispatch only and exits non-zero when
 * the forced-dispatch run costs more than 2% over baseline — the
 * perf-smoke-obs CI tripwire behind the "single branch on a disabled
 * recorder" claim. The gate intentionally stays on the like-for-like
 * interpreter pair: both arms must retire the same dispatch stream
 * for a 2% ceiling to mean anything.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/trace.hh"
#include "workloads/httpd.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

struct Measurement
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double seconds = 0;
    uint64_t events = 0;

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

/** Repeats per configuration; minimum host time wins (see
 * bench_interp for why). A 2% floor needs the extra repeats even in
 * smoke mode. */
int repeats = 7;

enum class ObsConfig
{
    Baseline,     ///< recorder off, kObs=false instantiation
    Dispatch,     ///< recorder off, kObs=true forced (null observer)
    Recording,    ///< recorder on, default ring
    BaselineJit,  ///< recorder off, compiled tier active
    RecordingJit, ///< recorder on + jit requested (forces interpreter)
};

/** One timed run; records into `m` (min host time across calls). */
void
runOnce(ObsConfig config, int requests, Measurement &m)
{
    if (config == ObsConfig::Recording ||
        config == ObsConfig::RecordingJit)
        obs::Recorder::enable();

    SessionOptions options = httpdSessionOptions(
        TrackingMode::Shift, Granularity::Byte, CpuFeatures{},
        ExecEngine::Predecoded);
    if (config == ObsConfig::BaselineJit ||
        config == ObsConfig::RecordingJit) {
        options.jit = true;
        options.jitThreshold = 4;
    }
    Session session(kHttpdSource, options);
    provisionHttpdOs(session.os(), 4 * 1024);
    for (int i = 0; i < requests; ++i)
        session.os().queueConnection(kHttpdRequest);
    if (config == ObsConfig::Dispatch)
        session.machine().setObsDispatchForced(true);

    auto start = std::chrono::steady_clock::now();
    RunResult result = session.run();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    if (config == ObsConfig::Recording ||
        config == ObsConfig::RecordingJit)
        obs::Recorder::disable();

    if (!result.ok()) {
        std::fprintf(stderr, "bench_obs: run failed (%s: %s)\n",
                     faultKindName(result.fault.kind),
                     result.fault.detail.c_str());
        std::exit(1);
    }
    if (m.seconds == 0) {
        m.instructions = result.instructions;
        m.cycles = result.cycles;
        m.seconds = seconds;
        m.events = result.stats.get("obs.events");
        return;
    }
    // Same program, same inputs: the simulated quantities must not
    // move across repeats or observability configurations.
    if (result.instructions != m.instructions ||
        result.cycles != m.cycles) {
        std::fprintf(stderr, "bench_obs: NON-DETERMINISTIC repeat\n");
        std::exit(1);
    }
    if (seconds < m.seconds)
        m.seconds = seconds;
}

/**
 * Measure a configuration alone (used for the recording row, where
 * interleaving would leave a recorder active across configs).
 */
Measurement
measure(ObsConfig config, int requests)
{
    Measurement m;
    for (int rep = 0; rep < repeats; ++rep)
        runOnce(config, requests, m);
    return m;
}

void
writeJson(const Measurement &base, const Measurement &dispatch,
          const Measurement &recording, const Measurement &baseJit,
          const Measurement &recordingJit, double dispatchOverhead,
          double recordingOverhead, double recordingJitOverhead)
{
    FILE *f = std::fopen("BENCH_obs.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_obs: cannot write BENCH_obs.json\n");
        return;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"workload\": \"httpd\",\n"
        "  \"mips_baseline\": %.2f,\n"
        "  \"mips_dispatch_forced\": %.2f,\n"
        "  \"mips_recording\": %.2f,\n"
        "  \"mips_baseline_jit\": %.2f,\n"
        "  \"mips_recording_jit\": %.2f,\n"
        "  \"disabled_overhead\": %.4f,\n"
        "  \"recording_overhead\": %.4f,\n"
        "  \"recording_jit_overhead\": %.4f,\n"
        "  \"recording_events\": %llu\n"
        "}\n",
        base.mips(), dispatch.mips(), recording.mips(), baseJit.mips(),
        recordingJit.mips(), dispatchOverhead, recordingOverhead,
        recordingJitOverhead, (unsigned long long)recording.events);
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    int requests = smoke ? 200 : 50;

    std::printf("\n=== Observability cost: httpd host time by recorder "
                "configuration ===\n");
    std::printf("%-18s %12s %12s %10s\n", "configuration", "MIPS",
                "seconds", "overhead");
    benchutil::rule(56);

    // Interleave the baseline/dispatch repeats so host frequency
    // drift hits both configurations equally — a 2% ceiling cannot
    // survive measuring one config entirely after the other.
    Measurement base;
    Measurement dispatch;
    for (int rep = 0; rep < repeats; ++rep) {
        runOnce(ObsConfig::Baseline, requests, base);
        runOnce(ObsConfig::Dispatch, requests, dispatch);
    }
    Measurement recording =
        smoke ? Measurement{} : measure(ObsConfig::Recording, requests);
    Measurement baseJit = smoke ? Measurement{}
                                : measure(ObsConfig::BaselineJit, requests);
    Measurement recordingJit =
        smoke ? Measurement{}
              : measure(ObsConfig::RecordingJit, requests);

    // Cross-configuration identity: observability must never change
    // what the simulation computes. The JIT rows share the invariant:
    // the compiled tier retires a bit-identical simulated stream.
    if (dispatch.instructions != base.instructions ||
        dispatch.cycles != base.cycles) {
        std::fprintf(stderr, "bench_obs: SIMULATION CHANGED under "
                             "forced obs dispatch\n");
        return 1;
    }
    if (!smoke && (baseJit.instructions != base.instructions ||
                   recordingJit.instructions != base.instructions)) {
        std::fprintf(stderr, "bench_obs: SIMULATION CHANGED under "
                             "the JIT rows\n");
        return 1;
    }

    double dispatchOverhead = base.seconds > 0
                                  ? dispatch.seconds / base.seconds - 1.0
                                  : 0;
    double recordingOverhead = base.seconds > 0 && !smoke
                                   ? recording.seconds / base.seconds - 1.0
                                   : 0;
    // Against the tier the deployment actually runs: what tracing
    // costs when enabling it also forfeits compiled code.
    double recordingJitOverhead =
        baseJit.seconds > 0 && !smoke
            ? recordingJit.seconds / baseJit.seconds - 1.0
            : 0;

    std::printf("%-18s %12.1f %12.4f %9s\n", "baseline (off)",
                base.mips(), base.seconds, "—");
    std::printf("%-18s %12.1f %12.4f %+9.1f%%\n", "forced dispatch",
                dispatch.mips(), dispatch.seconds,
                100.0 * dispatchOverhead);
    if (!smoke) {
        std::printf("%-18s %12.1f %12.4f %+9.1f%%  (%llu events)\n",
                    "recording", recording.mips(), recording.seconds,
                    100.0 * recordingOverhead,
                    (unsigned long long)recording.events);
        std::printf("%-18s %12.1f %12.4f %9s\n", "baseline + jit",
                    baseJit.mips(), baseJit.seconds, "—");
        std::printf("%-18s %12.1f %12.4f %+9.1f%%  (vs jit; forces "
                    "interpreter)\n",
                    "recording + jit", recordingJit.mips(),
                    recordingJit.seconds, 100.0 * recordingJitOverhead);
    }
    benchutil::rule(56);
    std::printf("(simulated instructions and cycles verified identical "
                "across configurations)\n\n");

    registerMetricRow("obs/httpd",
                      {{"mips_baseline", base.mips()},
                       {"mips_dispatch_forced", dispatch.mips()},
                       {"mips_baseline_jit", baseJit.mips()},
                       {"disabled_overhead", dispatchOverhead},
                       {"recording_overhead", recordingOverhead},
                       {"recording_jit_overhead", recordingJitOverhead}});
    writeJson(base, dispatch, recording, baseJit, recordingJit,
              dispatchOverhead, recordingOverhead, recordingJitOverhead);

    if (smoke && dispatchOverhead > 0.02) {
        std::fprintf(stderr,
                     "perf-smoke-obs FAIL: disabled-recorder dispatch "
                     "costs %.1f%% over baseline (ceiling 2%%)\n",
                     100.0 * dispatchOverhead);
        return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
