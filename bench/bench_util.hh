/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Each bench binary reproduces one table or figure of the paper: it
 * runs the relevant simulations once, prints the paper-style table
 * (simulated-cycle ratios — the substrate is a simulator, so relative
 * numbers are the result), and then registers google-benchmark rows
 * that expose the measured metrics as counters.
 */

#ifndef SHIFT_BENCH_BENCH_UTIL_HH
#define SHIFT_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace shift::benchutil
{

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/**
 * Host-throughput sampling discipline, shared by the MIPS benches
 * (bench_interp, bench_jit): how many back-to-back runs one timed
 * sample must aggregate so it retires at least `floorInstrs`
 * simulated instructions. A short workload (the 5-request smoke
 * httpd serve retires ~60k instructions in ~1.5ms) otherwise
 * measures timer granularity, cold host caches and allocator
 * first-touch instead of steady-state throughput — the historical
 * httpd MIPS outlier. Callers should also run one untimed warm-up
 * before the first sample.
 */
inline int
runsForInstructionFloor(uint64_t perRunInstrs, uint64_t floorInstrs)
{
    if (perRunInstrs == 0 || perRunInstrs >= floorInstrs)
        return 1;
    return static_cast<int>((floorInstrs + perRunInstrs - 1) /
                            perRunInstrs);
}

/** Print a horizontal rule sized to a header line. */
inline void
rule(size_t width)
{
    for (size_t i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/**
 * Register a google-benchmark row that exposes precomputed metrics as
 * counters (the simulation itself ran during table construction).
 */
inline void
registerMetricRow(const std::string &name,
                  std::map<std::string, double> counters)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [counters = std::move(counters)](benchmark::State &state) {
            for (auto _ : state) {
                benchmark::DoNotOptimize(counters.size());
            }
            for (const auto &kv : counters)
                state.counters[kv.first] = kv.second;
        })
        ->Iterations(1);
}

} // namespace shift::benchutil

#endif // SHIFT_BENCH_BENCH_UTIL_HH
