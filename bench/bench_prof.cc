/**
 * @file
 * Tier-attribution profiler cost and payoff (docs/OBSERVABILITY.md):
 *
 *  - Cost: what `options.profile` charges the engine. The disabled
 *    profiler is a separate runDecoded instantiation — the production
 *    path is untouched — so the guarded quantity is the off-arm's
 *    host time against the no-obs baseline (the same configuration;
 *    the gate catches the contract drifting, e.g. profiler checks
 *    leaking into the production instantiation). The enabled cost is
 *    reported alongside for scale.
 *  - Payoff: per-tier host-time attribution for every SPEC kernel
 *    under the async tier (the regime where PR 9's crafty regression
 *    had to be diagnosed with out-of-tree gprof), a JIT row, and
 *    httpd — written to BENCH_prof.json.
 *
 * Every profiled run asserts the attribution invariant: the per-tier
 * nanosecond breakdown sums to the engine total within 1% (it is
 * exact by construction — every interval lands in one bucket).
 *
 * `--smoke` (the perf-smoke-prof CI tripwire) runs the httpd
 * off-vs-baseline interleave with the 2% ceiling, plus the crafty
 * attribution floor: the async-publish tier must carry >=20% of the
 * run, reproducing the pinned gprof diagnosis in-tree.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "support/stats.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace
{

using namespace shift;
using namespace shift::workloads;
using benchutil::registerMetricRow;

/** Repeats per timed configuration; minimum host time wins (see
 * bench_interp for why). The 2% ceiling compares two IDENTICAL
 * configurations, so every percent of min-of-N scatter is a flake.
 * Observed per-run noise on shared hosts is additive and heavy
 * (tens of percent of CPU-steal inflation), which is exactly the
 * regime where the minimum converges to the true floor — given
 * enough repeats, hence far more than the other benches use. */
int repeats = 41;

struct Measurement
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double seconds = 0;

    double mips() const
    {
        return seconds > 0 ? double(instructions) / seconds / 1e6 : 0;
    }
};

/** Per-tier slice of one profiled run. */
struct TierRow
{
    std::string name;    ///< workload/config label
    uint64_t totalNanos = 0;
    uint64_t instructions = 0;
    /** (tier tag, nanos), every prof.tier.* counter. */
    std::vector<std::pair<std::string, uint64_t>> tiers;

    uint64_t
    tierSum() const
    {
        uint64_t sum = 0;
        for (const auto &t : tiers)
            sum += t.second;
        return sum;
    }

    double
    share(const char *tier) const
    {
        if (!totalNanos)
            return 0;
        for (const auto &t : tiers)
            if (t.first == tier)
                return double(t.second) / double(totalNanos);
        return 0;
    }
};

/** Extract the prof.tier.* breakdown from a run's stats. */
TierRow
tierRowFrom(const std::string &name, const RunResult &result)
{
    TierRow row;
    row.name = name;
    row.instructions = result.instructions;
    row.totalNanos = result.stats.get("prof.total.nanos");
    result.stats.forEach([&](const std::string &stat, uint64_t value) {
        const std::string prefix = "prof.tier.";
        const std::string suffix = ".nanos";
        if (stat.size() <= prefix.size() + suffix.size() ||
            stat.compare(0, prefix.size(), prefix) != 0 ||
            stat.compare(stat.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            return;
        row.tiers.emplace_back(
            stat.substr(prefix.size(),
                        stat.size() - prefix.size() - suffix.size()),
            value);
    });
    return row;
}

/** The attribution invariant: tier nanos sum to the engine total
 * within 1% (exact by construction; the tolerance covers nothing but
 * future drift). */
void
checkSums(const TierRow &row)
{
    if (!row.totalNanos) {
        std::fprintf(stderr, "bench_prof: %s produced no prof.* stats\n",
                     row.name.c_str());
        std::exit(1);
    }
    uint64_t sum = row.tierSum();
    double rel = sum > row.totalNanos
                     ? double(sum - row.totalNanos) / double(row.totalNanos)
                     : double(row.totalNanos - sum) / double(row.totalNanos);
    if (rel > 0.01) {
        std::fprintf(stderr,
                     "bench_prof: %s tier sum %llu vs total %llu "
                     "(off by %.2f%%, tolerance 1%%)\n",
                     row.name.c_str(), (unsigned long long)sum,
                     (unsigned long long)row.totalNanos, 100.0 * rel);
        std::exit(1);
    }
}

enum class ProfConfig
{
    Baseline, ///< the no-obs production configuration
    Off,      ///< identical options; the disabled-profiler contract arm
    On,       ///< options.profile: the kProf instantiation, live table
};

/** One timed httpd run; folds into `m` (min host time) and returns
 * this run's seconds for the paired-ratio overhead estimate. */
double
runHttpdOnce(ProfConfig config, int requests, Measurement &m,
             TierRow *row)
{
    SessionOptions options = httpdSessionOptions(
        TrackingMode::Shift, Granularity::Byte, CpuFeatures{},
        ExecEngine::Predecoded);
    options.profile = config == ProfConfig::On;
    Session session(kHttpdSource, options);
    provisionHttpdOs(session.os(), 4 * 1024);
    for (int i = 0; i < requests; ++i)
        session.os().queueConnection(kHttpdRequest);

    auto start = std::chrono::steady_clock::now();
    RunResult result = session.run();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    if (!result.ok()) {
        std::fprintf(stderr, "bench_prof: httpd run failed (%s: %s)\n",
                     faultKindName(result.fault.kind),
                     result.fault.detail.c_str());
        std::exit(1);
    }
    if (m.seconds == 0) {
        m.instructions = result.instructions;
        m.cycles = result.cycles;
        m.seconds = seconds;
    } else {
        // Same program, same inputs: the simulated quantities must
        // not move across repeats or profiler configurations.
        if (result.instructions != m.instructions ||
            result.cycles != m.cycles) {
            std::fprintf(stderr, "bench_prof: NON-DETERMINISTIC repeat\n");
            std::exit(1);
        }
        if (seconds < m.seconds)
            m.seconds = seconds;
    }
    if (row && config == ProfConfig::On) {
        *row = tierRowFrom("httpd", result);
        checkSums(*row);
    }
    return seconds;
}

/** One profiled SPEC run; attribution only, not timed. */
TierRow
profileSpec(const std::string &shortName, const SpecRunConfig &config,
            const char *label)
{
    const SpecKernel &kernel = specKernel(shortName);
    SpecRun run = runSpecKernel(kernel, config);
    if (!run.result.ok()) {
        std::fprintf(stderr, "bench_prof: %s failed (%s: %s)\n",
                     shortName.c_str(),
                     faultKindName(run.result.fault.kind),
                     run.result.fault.detail.c_str());
        std::exit(1);
    }
    TierRow row = tierRowFrom("spec/" + shortName + "/" + label,
                              run.result);
    checkSums(row);
    return row;
}

SpecRunConfig
asyncProfConfig()
{
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    config.taintInput = true;
    config.engine = ExecEngine::Predecoded;
    config.async.enabled = true;
    config.profile = true;
    return config;
}

void
printRow(const TierRow &row)
{
    std::printf("%-22s %8.1f ms", row.name.c_str(),
                double(row.totalNanos) / 1e6);
    // The engine tiers worth a column; everything else folds into
    // the printed residual (the JSON keeps the full breakdown).
    double named = 0;
    for (const char *tier :
         {"interp-slow", "interp-fast", "async-publish", "builtin",
          "host", "jit-slow", "jit-fast", "compile"}) {
        double s = row.share(tier);
        named += s;
        if (s >= 0.005)
            std::printf("  %s %4.1f%%", tier, 100.0 * s);
    }
    std::printf("\n");
}

void
writeJson(const Measurement &base, const Measurement &off,
          const Measurement &on, double disabledOverhead,
          double enabledOverhead, const std::vector<TierRow> &rows)
{
    FILE *f = std::fopen("BENCH_prof.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_prof: cannot write BENCH_prof.json\n");
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"httpd\",\n"
                 "  \"mips_baseline\": %.2f,\n"
                 "  \"mips_profile_off\": %.2f,\n"
                 "  \"mips_profile_on\": %.2f,\n"
                 "  \"disabled_overhead\": %.4f,\n"
                 "  \"enabled_overhead\": %.4f,\n"
                 "  \"attribution\": [\n",
                 base.mips(), off.mips(), on.mips(), disabledOverhead,
                 enabledOverhead);
    for (size_t i = 0; i < rows.size(); ++i) {
        const TierRow &r = rows[i];
        std::fprintf(f, "    {\"name\": \"%s\", \"total_ms\": %.2f",
                     r.name.c_str(), double(r.totalNanos) / 1e6);
        for (const auto &t : r.tiers) {
            std::fprintf(f, ", \"%s\": %.4f", t.first.c_str(),
                         r.totalNanos ? double(t.second) /
                                            double(r.totalNanos)
                                      : 0);
        }
        std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_prof.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    // Longer serves than bench_obs: the disabled-overhead gate
    // compares two identical configurations, so the residual IS the
    // measurement noise — keep each timed run well clear of timer
    // granularity.
    int requests = smoke ? 600 : 200;

    std::printf("\n=== Tier-attribution profiler: httpd host time by "
                "configuration ===\n");
    std::printf("%-18s %12s %12s %10s\n", "configuration", "MIPS",
                "seconds", "overhead");
    benchutil::rule(56);

    // Interleave all three arms so host frequency drift hits every
    // configuration equally, and rotate the order each repeat —
    // baseline and off are identical configurations, so any
    // systematic difference between them is pure measurement bias,
    // and a fixed order was observed to bake in several percent.
    Measurement base;
    Measurement off;
    Measurement on;
    TierRow httpdRow;
    for (int rep = 0; rep < repeats; ++rep) {
        ProfConfig order[3] = {ProfConfig::Baseline, ProfConfig::Off,
                               ProfConfig::On};
        double secs[3] = {0, 0, 0};
        for (int slot = 0; slot < 3; ++slot) {
            ProfConfig config = order[(slot + rep) % 3];
            Measurement &m = config == ProfConfig::Baseline ? base
                             : config == ProfConfig::Off    ? off
                                                            : on;
            secs[int(config)] = runHttpdOnce(
                config, requests, m,
                config == ProfConfig::On ? &httpdRow : nullptr);
        }
        if (std::getenv("BENCH_PROF_DEBUG"))
            std::fprintf(stderr, "rep %d: base %.4f off %.4f on %.4f\n",
                         rep, secs[0], secs[1], secs[2]);
    }

    // Ratio of per-arm minima. The host noise here is additive (runs
    // only ever get SLOWER than the true cost — scheduler preemption,
    // frequency dips), so the minimum over many interleaved repeats
    // converges to each arm's noise-free floor, and their ratio is the
    // one estimator that does not inherit the per-run scatter. Paired
    // per-rep ratios were tried first and flaked: adjacent runs do NOT
    // see the same host conditions when the noise decorrelates faster
    // than a single run (observed per-rep ratios spanned 0.72–1.12 on
    // identical configurations).
    double disabledOverhead = off.seconds / base.seconds - 1.0;
    double enabledOverhead = on.seconds / base.seconds - 1.0;

    std::printf("%-18s %12.1f %12.4f %9s\n", "baseline (no obs)",
                base.mips(), base.seconds, "—");
    std::printf("%-18s %12.1f %12.4f %+9.1f%%\n", "profile off",
                off.mips(), off.seconds, 100.0 * disabledOverhead);
    std::printf("%-18s %12.1f %12.4f %+9.1f%%\n", "profile on",
                on.mips(), on.seconds, 100.0 * enabledOverhead);
    benchutil::rule(56);
    std::printf("(simulated instructions and cycles verified identical "
                "across configurations)\n\n");

    // Attribution rows: crafty is the pinned diagnosis (the PR 9
    // regression gprof traced to source-side event publication); the
    // full run covers every kernel, a JIT row and httpd.
    std::printf("=== per-tier attribution (async tier unless "
                "noted) ===\n");
    std::vector<TierRow> rows;
    rows.push_back(profileSpec("crafty", asyncProfConfig(), "async"));
    if (!smoke) {
        for (const SpecKernel &kernel : specKernels()) {
            if (kernel.shortName == "crafty")
                continue;
            rows.push_back(
                profileSpec(kernel.shortName, asyncProfConfig(),
                            "async"));
        }
        if (Machine::jitAvailable()) {
            SpecRunConfig jitConfig;
            jitConfig.mode = TrackingMode::Shift;
            jitConfig.granularity = Granularity::Byte;
            jitConfig.taintInput = true;
            jitConfig.engine = ExecEngine::Predecoded;
            jitConfig.jit = true;
            jitConfig.profile = true;
            rows.push_back(profileSpec("bzip2", jitConfig, "jit"));
        }
    }
    rows.push_back(httpdRow);
    for (const TierRow &row : rows)
        printRow(row);
    benchutil::rule(72);
    std::printf("(per-tier nanos verified to sum to the engine total "
                "within 1%% on every row)\n\n");

    const TierRow &crafty = rows.front();
    double publishShare = crafty.share("async-publish");
    std::printf("crafty async-publish share: %.1f%% of %0.1f ms "
                "engine time\n\n",
                100.0 * publishShare, double(crafty.totalNanos) / 1e6);

    registerMetricRow("prof/httpd",
                      {{"mips_baseline", base.mips()},
                       {"mips_profile_off", off.mips()},
                       {"mips_profile_on", on.mips()},
                       {"disabled_overhead", disabledOverhead},
                       {"enabled_overhead", enabledOverhead}});
    registerMetricRow("prof/crafty_async",
                      {{"publish_share", publishShare},
                       {"total_ms", double(crafty.totalNanos) / 1e6}});
    writeJson(base, off, on, disabledOverhead, enabledOverhead, rows);

    if (smoke) {
        bool fail = false;
        if (disabledOverhead > 0.02) {
            std::fprintf(stderr,
                         "perf-smoke-prof FAIL: disabled profiler "
                         "costs %.1f%% over the no-obs baseline "
                         "(ceiling 2%%)\n",
                         100.0 * disabledOverhead);
            fail = true;
        }
        if (publishShare < 0.20) {
            std::fprintf(stderr,
                         "perf-smoke-prof FAIL: crafty async-publish "
                         "share %.1f%% below the 20%% diagnosis floor\n",
                         100.0 * publishShare);
            fail = true;
        }
        if (fail)
            return 1;
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
