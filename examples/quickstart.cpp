/**
 * @file
 * Quickstart: the SHIFT pipeline in one page.
 *
 * Compiles a small MiniC program, instruments it with SHIFT, runs it
 * on the simulated Itanium-style machine, and shows (1) the
 * instrumentation the compiler emitted for a load (paper figure 5),
 * (2) taint flowing from a file read through computation into memory,
 * and (3) a low-level policy catching a tainted pointer dereference.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/instrument.hh"
#include "support/logging.hh"
#include "lang/compiler.hh"
#include "runtime/session.hh"

using namespace shift;

namespace
{

const char *kProgram = R"MC(
int table[64];

int main() {
    char buf[16];
    int fd = open("input.txt", 0);
    int n = read(fd, buf, 15);
    buf[n] = 0;
    close(fd);

    // Taint propagates through arithmetic in REGISTERS via the NaT
    // bit -- zero instrumentation on these lines.
    int x = buf[0] - '0';
    int y = x * 10 + 3;

    print("tainted? ");
    print_num(__arg_tainted(y));
    print("\n");

    // ... and back into MEMORY via the instrumented store.
    table[0] = y;
    print("memory tainted? ");
    print_num(__mem_tainted(table));
    print("\n");

    // Policy L1: using tainted data as a load address faults.
    return table[y];
}
)MC";

void
showInstrumentedLoad()
{
    // Compile a one-load function twice and diff the shapes.
    const char *tiny =
        "long g; int main() { long *p = &g; return (int)*p; }";
    Program plain = minic::compileProgram(tiny);
    Program instrumented = minic::compileProgram(tiny);
    InstrumentOptions options;
    options.granularity = Granularity::Word;
    instrumentProgram(instrumented, options);

    std::printf("--- figure 5 in the flesh: one ld8, before/after "
                "(word level) ---\n");
    auto mainIdx = instrumented.findFunction("main");
    const Function &fn = instrumented.functions[*mainIdx];
    for (const Instr &instr : fn.code) {
        const char *tag = instr.prov == Provenance::Original
                              ? ""
                              : provenanceName(instr.prov);
        std::printf("  %-34s %s\n", disassemble(instr).c_str(), tag);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    showInstrumentedLoad();

    SessionOptions options;
    options.mode = TrackingMode::Shift;          // the paper's system
    options.policy.granularity = Granularity::Byte;
    options.policy.taintFile = true;             // [sources] file=taint

    Session session(kProgram, options);
    session.os().addFile("input.txt", "7");

    RunResult result = session.run();

    std::printf("--- run ---\n%s", session.os().stdoutText().c_str());
    if (result.killedByPolicy) {
        std::printf("policy %s stopped the program: %s\n",
                    result.alerts.back().policy.c_str(),
                    result.alerts.back().message.c_str());
    } else {
        std::printf("program exited with %lld\n",
                    static_cast<long long>(result.exitCode));
    }
    std::printf("%llu instructions, %llu cycles simulated\n",
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.cycles));
    return 0;
}
