/**
 * @file
 * Protecting a production-style web server with SHIFT.
 *
 * Runs the HTTP server workload twice — uninstrumented and under
 * SHIFT — serving a mixed request stream that includes a directory-
 * traversal attack, and reports: requests served, the attack verdict,
 * and the tracking overhead (the paper's headline "about 1% overhead
 * for server applications").
 *
 * Build & run:  ./build/examples/webserver_protection
 */

#include <cstdio>

#include "workloads/httpd.hh"
#include "support/logging.hh"

using namespace shift;
using namespace shift::workloads;

namespace
{

struct Outcome
{
    RunResult result;
    size_t responses = 0;
    uint64_t cycles = 0;
};

Outcome
serveMixedTraffic(TrackingMode mode)
{
    SessionOptions options;
    options.mode = mode;
    options.policy.taintNetwork = true;
    options.policy.taintFile = false;
    options.policy.h2 = true;                  // traversal protection
    options.policy.h5 = true;                  // XSS protection
    options.policy.docRoot = "/www";
    options.policy.granularity = Granularity::Word;

    Session session(kHttpdSource, options);
    session.os().addFile("/www/index.html",
                         "<html><body>welcome</body></html>");
    session.os().addFile("/www/app.css", "body { color: #222; }");
    session.os().addFile("/etc/shadow", "root:$6$secret");

    for (int i = 0; i < 6; ++i) {
        session.os().queueConnection(
            "GET /index.html HTTP/1.0\r\n\r\n");
        session.os().queueConnection("GET /app.css HTTP/1.0\r\n\r\n");
    }
    // The attack, URL-encoded the way scanners send it.
    session.os().queueConnection(
        "GET /%2e%2e/%2e%2e/etc/shadow HTTP/1.0\r\n\r\n");

    Outcome out;
    out.result = session.run();
    out.responses = session.os().responses().size();
    out.cycles = out.result.cycles;
    return out;
}

} // namespace

int
main()
{
    setVerbose(false);

    std::printf("serving 12 legitimate requests + 1 traversal "
                "attack...\n\n");

    Outcome plain = serveMixedTraffic(TrackingMode::None);
    std::printf("without SHIFT: %zu responses, attack %s\n",
                plain.responses,
                plain.result.alerts.empty() ? "SERVED THE SHADOW FILE"
                                            : "blocked");

    Outcome guarded = serveMixedTraffic(TrackingMode::Shift);
    std::printf("with SHIFT:    %zu responses, ", guarded.responses);
    if (!guarded.result.alerts.empty()) {
        std::printf("attack blocked by %s: %s\n",
                    guarded.result.alerts.back().policy.c_str(),
                    guarded.result.alerts.back().message.c_str());
    } else {
        std::printf("attack NOT detected\n");
    }

    // Overhead on a clean serving run (figure 6 conditions).
    HttpdConfig base;
    base.mode = TrackingMode::None;
    base.fileSize = 16 * 1024;
    base.requests = 20;
    HttpdRun baseRun = runHttpd(base);
    HttpdConfig tracked = base;
    tracked.mode = TrackingMode::Shift;
    tracked.granularity = Granularity::Word;
    HttpdRun trackedRun = runHttpd(tracked);
    std::printf("\ntracking overhead at 16KB responses: %.2f%% "
                "(paper: ~1%% for servers)\n",
                100.0 * (double(trackedRun.totalCycles) /
                             double(baseRun.totalCycles) -
                         1.0));
    return 0;
}
