/**
 * @file
 * Policy explorer: SHIFT's software-assigned security policies.
 *
 * SHIFT decouples the tracking mechanism from policy: policies live in
 * a configuration file. This example parses policy configurations from
 * INI text and replays the phpMyFAQ SQL-injection scenario under each,
 * showing that the same instrumented binary detects or misses the
 * attack purely as a function of configuration — and that taint
 * sources are configurable the same way.
 *
 * Build & run:  ./build/examples/policy_explorer [policy.ini]
 */

#include <cstdio>
#include <string>

#include "workloads/attacks.hh"
#include "support/logging.hh"

using namespace shift;
using namespace shift::workloads;

namespace
{

void
replayPolicy(const char *label, const PolicyConfig &policy)
{
    const AttackScenario &scenario = attackScenario("phpmyfaq");
    AttackScenario variant = scenario;
    variant.policy = policy;

    AttackRun exploit =
        runAttackScenario(variant, true, policy.granularity);
    AttackRun benign =
        runAttackScenario(variant, false, policy.granularity);

    const char *verdict;
    if (!exploit.result.alerts.empty())
        verdict = "DETECTED";
    else if (exploit.result.exited)
        verdict = "missed (attack executed)";
    else
        verdict = "missed (crashed)";

    std::printf("%-34s exploit: %-28s benign: %s\n", label, verdict,
                benign.falsePositive ? "FALSE POSITIVE" : "clean");
    if (!exploit.result.alerts.empty()) {
        std::printf("%36s %s: %s\n", "",
                    exploit.result.alerts.back().policy.c_str(),
                    exploit.result.alerts.back().message.c_str());
    }
}

void
replay(const char *label, const std::string &configText)
{
    replayPolicy(label, PolicyConfig::fromText(configText));
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    if (argc > 1) {
        // Replay under a user-supplied policy file.
        PolicyConfig policy =
            PolicyConfig::fromConfig(Config::parseFile(argv[1]));
        std::printf("using %s (granularity=%s)\n", argv[1],
                    policy.granularity == Granularity::Byte ? "byte"
                                                            : "word");
        replayPolicy(argv[1], policy);
        return 0;
    }

    std::printf("phpMyFAQ SQL injection under different policy "
                "files:\n\n");

    replay("full protection (H3 on)",
           "[sources]\n"
           "network = taint\n"
           "[policies]\n"
           "H3 = on\n"
           "[tracking]\n"
           "granularity = byte\n");

    replay("H3 disabled",
           "[sources]\n"
           "network = taint\n"
           "[policies]\n"
           "H3 = off\n");

    replay("H3 on, network trusted",
           "[sources]\n"
           "network = clean\n"
           "[policies]\n"
           "H3 = on\n");

    replay("word-granularity tracking",
           "[sources]\n"
           "network = taint\n"
           "[policies]\n"
           "H3 = on\n"
           "[tracking]\n"
           "granularity = word\n");

    replay("log-only action",
           "[sources]\n"
           "network = taint\n"
           "[policies]\n"
           "H3 = on\n"
           "[tracking]\n"
           "action = log\n");

    std::printf("\nthe tracking mechanism never changed; only the "
                "policy file did.\n");
    return 0;
}
