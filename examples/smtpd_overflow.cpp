/**
 * @file
 * The paper's figure-1 walk-through: a buffer overflow in
 * qwik-smtpd 0.3.
 *
 * The SMTP server checks the client IP to prohibit relaying mail not
 * from localhost — but HELO does not bound-check its argument, so a
 * long HELO overflows clientHELO into localIP. The attacker then
 * relays freely.
 *
 * With SHIFT, the overflowing strcpy drags taint over localIP; the
 * figure-1 policy ("disallow tainted data to be compared and alter
 * the control flow") turns the tainted comparison into an alert.
 *
 * Build & run:  ./build/examples/smtpd_overflow
 */

#include <cstdio>

#include "runtime/session.hh"
#include "support/logging.hh"

using namespace shift;

namespace
{

// The vulnerable server, modelled on the paper's figure 1. clientHELO
// and localIP are adjacent buffers; strcpy does not check the length
// of the HELO argument (line 5 of the figure).
const char *kSmtpd = R"MC(
char buffers[96];      /* clientHELO[32] then localIP[64], adjacent */
char req[256];
char clientip[64];

/* The sensitive comparison of figure 1 lines 6-7. The figure-1 SHIFT
 * policy is scoped to this function: tainted data reaching either
 * operand of these compares raises an alert. */
int check_relay(char *ip, char *local) {
    long i = 0;
    while (ip[i] && ip[i] == local[i]) i++;
    if (ip[i] == 0 && local[i] == 0) return 1;
    return 0;
}

int main() {
    char *clienthelo = buffers;
    char *localip = buffers + 32;

    strcpy(localip, "127.0.0.1");
    strcpy(clientip, "10.9.8.7");          /* a remote client */

    int conn = accept();
    while (conn >= 0) {
        int n = recv(conn, req, 255);
        req[n] = 0;
        if (strncmp(req, "HELO ", 5) == 0) {
            /* no check for length of the argument! */
            strcpy(clienthelo, req + 5);
            send(conn, "250 ok\n", 7);
        } else if (strncmp(req, "MAIL", 4) == 0) {
            if (check_relay(clientip, "127.0.0.1")
                || check_relay(clientip, localip)) {
                send(conn, "250 relaying\n", 13);   /* exploited! */
            } else {
                send(conn, "550 relaying denied\n", 20);
            }
        }
        close(conn);
        conn = accept();
    }
    return 0;
}
)MC";

RunResult
runServer(bool attack, bool protect, std::string &output)
{
    SessionOptions options;
    options.mode = protect ? TrackingMode::Shift : TrackingMode::None;
    options.policy.taintNetwork = true;
    // The figure-1 policy: tainted data must not decide the relay
    // check. Scoped to the sensitive comparison, like the paper's
    // "if (Tainted(localIP)) Alert".
    if (protect)
        options.instr.cmpTaintAlertFunctions = {"check_relay"};

    Session session(kSmtpd, options);
    if (attack) {
        // Overflow clientHELO[32] so the attacker's spoofed IP lands
        // exactly over localIP.
        std::string helo = "HELO ";
        helo += std::string(32, 'A');
        helo += "10.9.8.7"; // lands exactly over localIP
        session.os().queueConnection(helo);
    } else {
        session.os().queueConnection("HELO mail.example.com\n");
    }
    session.os().queueConnection("MAIL FROM:<spam@evil>\n");

    RunResult result = session.run();
    for (const std::string &resp : session.os().responses())
        output += resp;
    return result;
}

} // namespace

int
main()
{
    setVerbose(false);

    std::printf("1) benign session, no protection:\n");
    std::string out;
    runServer(false, false, out);
    std::printf("%s\n", out.c_str());

    std::printf("2) overflow attack, no protection (the exploit "
                "succeeds):\n");
    out.clear();
    runServer(true, false, out);
    std::printf("%s\n", out.c_str());

    std::printf("3) overflow attack under SHIFT with the figure-1 "
                "policy:\n");
    out.clear();
    RunResult result = runServer(true, true, out);
    if (result.killedByPolicy) {
        std::printf("   ALERT (%s): %s\n",
                    result.alerts.back().policy.c_str(),
                    result.alerts.back().message.c_str());
    } else {
        std::printf("   NOT DETECTED — responses: %s\n", out.c_str());
    }

    std::printf("\n4) benign session under the same policy (no false "
                "positive):\n");
    out.clear();
    result = runServer(false, true, out);
    std::printf("%s   alerts: %zu\n", out.c_str(),
                result.alerts.size());
    return 0;
}
