# Empty compiler generated dependencies file for shift_lang.
# This may be replaced when dependencies are built.
