
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/codegen.cc" "src/lang/CMakeFiles/shift_lang.dir/codegen.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/codegen.cc.o.d"
  "/root/repo/src/lang/compiler.cc" "src/lang/CMakeFiles/shift_lang.dir/compiler.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/compiler.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/shift_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/liveness.cc" "src/lang/CMakeFiles/shift_lang.dir/liveness.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/liveness.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/shift_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/regalloc.cc" "src/lang/CMakeFiles/shift_lang.dir/regalloc.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/regalloc.cc.o.d"
  "/root/repo/src/lang/speculate.cc" "src/lang/CMakeFiles/shift_lang.dir/speculate.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/speculate.cc.o.d"
  "/root/repo/src/lang/type.cc" "src/lang/CMakeFiles/shift_lang.dir/type.cc.o" "gcc" "src/lang/CMakeFiles/shift_lang.dir/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/shift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/shift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
