file(REMOVE_RECURSE
  "CMakeFiles/shift_lang.dir/codegen.cc.o"
  "CMakeFiles/shift_lang.dir/codegen.cc.o.d"
  "CMakeFiles/shift_lang.dir/compiler.cc.o"
  "CMakeFiles/shift_lang.dir/compiler.cc.o.d"
  "CMakeFiles/shift_lang.dir/lexer.cc.o"
  "CMakeFiles/shift_lang.dir/lexer.cc.o.d"
  "CMakeFiles/shift_lang.dir/liveness.cc.o"
  "CMakeFiles/shift_lang.dir/liveness.cc.o.d"
  "CMakeFiles/shift_lang.dir/parser.cc.o"
  "CMakeFiles/shift_lang.dir/parser.cc.o.d"
  "CMakeFiles/shift_lang.dir/regalloc.cc.o"
  "CMakeFiles/shift_lang.dir/regalloc.cc.o.d"
  "CMakeFiles/shift_lang.dir/speculate.cc.o"
  "CMakeFiles/shift_lang.dir/speculate.cc.o.d"
  "CMakeFiles/shift_lang.dir/type.cc.o"
  "CMakeFiles/shift_lang.dir/type.cc.o.d"
  "libshift_lang.a"
  "libshift_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
