file(REMOVE_RECURSE
  "libshift_lang.a"
)
