# Empty compiler generated dependencies file for shift_support.
# This may be replaced when dependencies are built.
