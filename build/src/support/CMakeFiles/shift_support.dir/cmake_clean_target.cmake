file(REMOVE_RECURSE
  "libshift_support.a"
)
