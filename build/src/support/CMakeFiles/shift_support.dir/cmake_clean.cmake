file(REMOVE_RECURSE
  "CMakeFiles/shift_support.dir/config.cc.o"
  "CMakeFiles/shift_support.dir/config.cc.o.d"
  "CMakeFiles/shift_support.dir/logging.cc.o"
  "CMakeFiles/shift_support.dir/logging.cc.o.d"
  "CMakeFiles/shift_support.dir/stats.cc.o"
  "CMakeFiles/shift_support.dir/stats.cc.o.d"
  "libshift_support.a"
  "libshift_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
