file(REMOVE_RECURSE
  "libshift_workloads.a"
)
