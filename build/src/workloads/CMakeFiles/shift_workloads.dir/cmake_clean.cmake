file(REMOVE_RECURSE
  "CMakeFiles/shift_workloads.dir/attacks.cc.o"
  "CMakeFiles/shift_workloads.dir/attacks.cc.o.d"
  "CMakeFiles/shift_workloads.dir/httpd.cc.o"
  "CMakeFiles/shift_workloads.dir/httpd.cc.o.d"
  "CMakeFiles/shift_workloads.dir/spec.cc.o"
  "CMakeFiles/shift_workloads.dir/spec.cc.o.d"
  "libshift_workloads.a"
  "libshift_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
