# Empty dependencies file for shift_workloads.
# This may be replaced when dependencies are built.
