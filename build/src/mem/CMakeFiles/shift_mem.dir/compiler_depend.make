# Empty compiler generated dependencies file for shift_mem.
# This may be replaced when dependencies are built.
