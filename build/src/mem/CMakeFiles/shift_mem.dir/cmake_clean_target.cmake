file(REMOVE_RECURSE
  "libshift_mem.a"
)
