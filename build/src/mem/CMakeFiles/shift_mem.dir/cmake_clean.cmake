file(REMOVE_RECURSE
  "CMakeFiles/shift_mem.dir/cache.cc.o"
  "CMakeFiles/shift_mem.dir/cache.cc.o.d"
  "CMakeFiles/shift_mem.dir/memory.cc.o"
  "CMakeFiles/shift_mem.dir/memory.cc.o.d"
  "libshift_mem.a"
  "libshift_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
