# Empty dependencies file for shift_core.
# This may be replaced when dependencies are built.
