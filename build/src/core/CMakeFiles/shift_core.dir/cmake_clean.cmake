file(REMOVE_RECURSE
  "CMakeFiles/shift_core.dir/instrument.cc.o"
  "CMakeFiles/shift_core.dir/instrument.cc.o.d"
  "CMakeFiles/shift_core.dir/policy.cc.o"
  "CMakeFiles/shift_core.dir/policy.cc.o.d"
  "CMakeFiles/shift_core.dir/taint_map.cc.o"
  "CMakeFiles/shift_core.dir/taint_map.cc.o.d"
  "libshift_core.a"
  "libshift_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
