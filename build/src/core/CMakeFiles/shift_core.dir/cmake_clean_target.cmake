file(REMOVE_RECURSE
  "libshift_core.a"
)
