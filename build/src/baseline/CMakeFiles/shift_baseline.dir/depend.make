# Empty dependencies file for shift_baseline.
# This may be replaced when dependencies are built.
