file(REMOVE_RECURSE
  "libshift_baseline.a"
)
