file(REMOVE_RECURSE
  "CMakeFiles/shift_baseline.dir/software_dift.cc.o"
  "CMakeFiles/shift_baseline.dir/software_dift.cc.o.d"
  "libshift_baseline.a"
  "libshift_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
