src/runtime/CMakeFiles/shift_runtime.dir/minic_stdlib.cc.o: \
 /root/repo/src/runtime/minic_stdlib.cc /usr/include/stdc-predef.h \
 /root/repo/src/runtime/minic_stdlib.hh
