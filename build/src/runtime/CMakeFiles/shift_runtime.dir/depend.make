# Empty dependencies file for shift_runtime.
# This may be replaced when dependencies are built.
