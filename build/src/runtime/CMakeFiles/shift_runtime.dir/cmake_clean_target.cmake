file(REMOVE_RECURSE
  "libshift_runtime.a"
)
