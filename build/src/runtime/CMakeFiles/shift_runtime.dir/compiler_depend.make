# Empty compiler generated dependencies file for shift_runtime.
# This may be replaced when dependencies are built.
