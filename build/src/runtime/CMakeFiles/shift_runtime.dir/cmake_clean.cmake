file(REMOVE_RECURSE
  "CMakeFiles/shift_runtime.dir/builtins.cc.o"
  "CMakeFiles/shift_runtime.dir/builtins.cc.o.d"
  "CMakeFiles/shift_runtime.dir/minic_stdlib.cc.o"
  "CMakeFiles/shift_runtime.dir/minic_stdlib.cc.o.d"
  "CMakeFiles/shift_runtime.dir/session.cc.o"
  "CMakeFiles/shift_runtime.dir/session.cc.o.d"
  "libshift_runtime.a"
  "libshift_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
