# Empty compiler generated dependencies file for shift_sim.
# This may be replaced when dependencies are built.
