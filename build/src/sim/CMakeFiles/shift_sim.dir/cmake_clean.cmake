file(REMOVE_RECURSE
  "CMakeFiles/shift_sim.dir/faults.cc.o"
  "CMakeFiles/shift_sim.dir/faults.cc.o.d"
  "CMakeFiles/shift_sim.dir/machine.cc.o"
  "CMakeFiles/shift_sim.dir/machine.cc.o.d"
  "CMakeFiles/shift_sim.dir/os.cc.o"
  "CMakeFiles/shift_sim.dir/os.cc.o.d"
  "libshift_sim.a"
  "libshift_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
