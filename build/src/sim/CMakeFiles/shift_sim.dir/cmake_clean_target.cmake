file(REMOVE_RECURSE
  "libshift_sim.a"
)
