file(REMOVE_RECURSE
  "libshift_isa.a"
)
