# Empty dependencies file for shift_isa.
# This may be replaced when dependencies are built.
