file(REMOVE_RECURSE
  "CMakeFiles/shift_isa.dir/assembler.cc.o"
  "CMakeFiles/shift_isa.dir/assembler.cc.o.d"
  "CMakeFiles/shift_isa.dir/instruction.cc.o"
  "CMakeFiles/shift_isa.dir/instruction.cc.o.d"
  "CMakeFiles/shift_isa.dir/program.cc.o"
  "CMakeFiles/shift_isa.dir/program.cc.o.d"
  "libshift_isa.a"
  "libshift_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
