# Empty dependencies file for bench_arch.
# This may be replaced when dependencies are built.
