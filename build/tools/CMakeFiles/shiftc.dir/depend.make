# Empty dependencies file for shiftc.
# This may be replaced when dependencies are built.
