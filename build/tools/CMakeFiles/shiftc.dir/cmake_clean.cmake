file(REMOVE_RECURSE
  "CMakeFiles/shiftc.dir/shiftc.cc.o"
  "CMakeFiles/shiftc.dir/shiftc.cc.o.d"
  "shiftc"
  "shiftc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
