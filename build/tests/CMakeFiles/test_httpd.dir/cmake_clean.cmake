file(REMOVE_RECURSE
  "CMakeFiles/test_httpd.dir/test_httpd.cc.o"
  "CMakeFiles/test_httpd.dir/test_httpd.cc.o.d"
  "test_httpd"
  "test_httpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
