# Empty compiler generated dependencies file for test_httpd.
# This may be replaced when dependencies are built.
