file(REMOVE_RECURSE
  "CMakeFiles/test_speculate.dir/test_speculate.cc.o"
  "CMakeFiles/test_speculate.dir/test_speculate.cc.o.d"
  "test_speculate"
  "test_speculate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
