# Empty dependencies file for test_speculate.
# This may be replaced when dependencies are built.
