
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lang.cc" "tests/CMakeFiles/test_lang.dir/test_lang.cc.o" "gcc" "tests/CMakeFiles/test_lang.dir/test_lang.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/shift_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/shift_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/shift_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/shift_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/shift_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/shift_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/shift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/shift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
