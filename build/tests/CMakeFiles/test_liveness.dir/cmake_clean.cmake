file(REMOVE_RECURSE
  "CMakeFiles/test_liveness.dir/test_liveness.cc.o"
  "CMakeFiles/test_liveness.dir/test_liveness.cc.o.d"
  "test_liveness"
  "test_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
