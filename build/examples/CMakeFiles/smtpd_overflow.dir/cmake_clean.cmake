file(REMOVE_RECURSE
  "CMakeFiles/smtpd_overflow.dir/smtpd_overflow.cpp.o"
  "CMakeFiles/smtpd_overflow.dir/smtpd_overflow.cpp.o.d"
  "smtpd_overflow"
  "smtpd_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtpd_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
