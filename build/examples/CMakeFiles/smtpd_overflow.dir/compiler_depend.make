# Empty compiler generated dependencies file for smtpd_overflow.
# This may be replaced when dependencies are built.
