/**
 * @file
 * Shared harness for the JIT tier's test binaries (test_jit.cc,
 * test_jit_diff.cc).
 *
 * The tier's correctness statement is the strongest in the repo: the
 * compiled code retires the SAME simulated instruction stream as the
 * interpreter, charge for charge. So unlike the fast-path suite
 * (which allows the on-arm to execute fewer instructions), every
 * differential here demands EXACT equality — instructions, cycles,
 * every per-provenance counter, the taint bitmap, data/stack/OS
 * memory, verdicts and responses — between a jit-off and a jit-on
 * run of the same configuration. Only the jit.* counters themselves
 * may differ (they exist only on the on-arm) and are excluded from
 * the counter comparison.
 */

#ifndef SHIFT_TESTS_JIT_TEST_UTIL_HH
#define SHIFT_TESTS_JIT_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mem/address_space.hh"
#include "mem/memory.hh"
#include "runtime/session.hh"

#define SKIP_WITHOUT_JIT()                                              \
    do {                                                                \
        if (!::shift::Machine::jitAvailable())                          \
            GTEST_SKIP() << "JIT backend unavailable on this host";     \
    } while (0)

namespace shift
{
namespace jittest
{

/** Promote on first execution so short tests exercise compiled code. */
constexpr uint32_t kEager = 1;

inline const char *kCleanSource =
    "char buf[256];\n"
    "int main() {\n"
    "  long sum = 0;\n"
    "  for (int i = 0; i < 256; i++) buf[i] = (char)i;\n"
    "  for (int i = 0; i < 256; i++) sum += buf[i];\n"
    "  return (int)(sum & 127);\n"
    "}\n";

/** Exact-equality variant of test_fastpath.cc's differential record. */
struct DiffRun
{
    RunResult result;
    uint64_t tagHash = 0;
    uint64_t dataHash = 0;
    uint64_t stackHash = 0;
    uint64_t osHash = 0;
    std::vector<std::string> responses;
    uint64_t jitEntered = 0;
    uint64_t jitDeopts = 0;
};

inline DiffRun
captureRun(Session &session)
{
    DiffRun run;
    run.result = session.run();
    const Memory &mem = session.machine().memory();
    run.tagHash = mem.contentHash(kTagRegion);
    run.dataHash = mem.contentHash(kDataRegion);
    run.stackHash = mem.contentHash(kStackRegion);
    run.osHash = mem.contentHash(kOsRegion);
    run.responses = session.os().responses();
    run.jitEntered = session.machine().jitEntered();
    run.jitDeopts = session.machine().jitDeopts();
    return run;
}

/**
 * All counters except the tier's own (absent on the off-arm). With
 * `dropHostTiming` the async tier's wall-clock-dependent counters
 * (fence/ring spin and nanosecond totals, detection-lag samples) are
 * dropped too: they vary between two identical runs under the
 * threaded consumer, so a differential can only compare the
 * deterministic remainder (dift.events, dift.fences,
 * dift.violations and every engine counter stay compared).
 */
inline std::map<std::string, uint64_t>
comparableCounters(const StatSet &stats, bool dropHostTiming = false)
{
    std::map<std::string, uint64_t> out;
    stats.forEach([&](const std::string &name, uint64_t value) {
        if (name.rfind("jit.", 0) == 0)
            return;
        // Host-time attribution (profiler tables, background-compile
        // aux nanos): present only on the arm that compiled, and
        // wall-clock-dependent besides.
        if (name.rfind("prof.", 0) == 0)
            return;
        if (dropHostTiming &&
            (name.rfind("dift.fence.wait", 0) == 0 ||
             name.rfind("dift.ring.stall", 0) == 0 ||
             name.rfind("dift.lag.", 0) == 0))
            return;
        out[name] = value;
    });
    return out;
}

inline void
expectIdentical(const DiffRun &off, const DiffRun &on,
                const std::string &what, bool dropHostTiming = false)
{
    EXPECT_EQ(off.result.exited, on.result.exited) << what;
    EXPECT_EQ(off.result.exitCode, on.result.exitCode) << what;
    EXPECT_EQ(off.result.killedByPolicy, on.result.killedByPolicy)
        << what;
    ASSERT_EQ(off.result.alerts.size(), on.result.alerts.size()) << what;
    for (size_t i = 0; i < off.result.alerts.size(); ++i) {
        EXPECT_EQ(off.result.alerts[i].policy, on.result.alerts[i].policy)
            << what;
    }
    // Bit-exact simulation: not LE, EQ.
    EXPECT_EQ(off.result.instructions, on.result.instructions) << what;
    EXPECT_EQ(off.result.cycles, on.result.cycles) << what;
    EXPECT_EQ(off.tagHash, on.tagHash) << what << ": taint bitmap";
    EXPECT_EQ(off.dataHash, on.dataHash) << what << ": data memory";
    EXPECT_EQ(off.stackHash, on.stackHash) << what << ": stack memory";
    EXPECT_EQ(off.osHash, on.osHash) << what << ": OS memory";
    EXPECT_EQ(off.responses, on.responses) << what;

    // Every counter the engine emits — per-provenance cycle/instr
    // splits, cache hits, stalls, fast-path enters/deopts/cold-bails
    // and their causes — must agree exactly.
    std::map<std::string, uint64_t> offC =
        comparableCounters(off.result.stats, dropHostTiming);
    std::map<std::string, uint64_t> onC =
        comparableCounters(on.result.stats, dropHostTiming);
    for (const auto &[name, value] : offC)
        EXPECT_EQ(onC[name], value) << what << ": counter " << name;
    for (const auto &[name, value] : onC)
        EXPECT_EQ(offC[name], value) << what << ": counter " << name;
}

} // namespace jittest
} // namespace shift

#endif // SHIFT_TESTS_JIT_TEST_UTIL_HH
