/**
 * @file
 * Software-DIFT baseline unit tests: the pass must add explicit
 * propagation code for every data-flow instruction class and keep the
 * register-tag bitmap (r31) coherent — everything SHIFT gets from the
 * NaT hardware for free.
 */

#include <gtest/gtest.h>

#include "baseline/software_dift.hh"
#include "lang/compiler.hh"
#include "runtime/session.hh"

namespace shift
{
namespace
{

Program
instrumented(const std::string &source, InstrumentStats *stats = nullptr)
{
    minic::CompileOptions copts;
    copts.requireMain = false;
    Program program = minic::compileProgram(source, copts);
    BaselineOptions options;
    InstrumentStats st = instrumentSoftwareDift(program, options);
    if (stats)
        *stats = st;
    return program;
}

int
countBaselineProv(const Function &fn)
{
    int n = 0;
    for (const Instr &instr : fn.code) {
        if (instr.prov == Provenance::Baseline &&
            instr.op != Opcode::Label)
            ++n;
    }
    return n;
}

TEST(SoftwareDiftPass, AluOpsGetPropagationCode)
{
    InstrumentStats stats;
    Program program = instrumented(
        "long f(long a, long b) { return a * b + (a ^ b); }", &stats);
    const Function &fn = program.functions[*program.findFunction("f")];
    // Three ALU ops, each with tag[dst] = tag[a] | tag[b] glue.
    EXPECT_GE(countBaselineProv(fn), 9);
    EXPECT_GT(stats.added, 0u);
}

TEST(SoftwareDiftPass, EntryClearsTagBitmap)
{
    Program program = instrumented("int main() { return 0; }");
    const Function &fn =
        program.functions[*program.findFunction("main")];
    ASSERT_FALSE(fn.code.empty());
    const Instr &first = fn.code[0];
    EXPECT_EQ(first.op, Opcode::Movi);
    EXPECT_EQ(first.r1, reg::natSrc); // r31 is the tag bitmap
    EXPECT_EQ(first.imm, 0);
    EXPECT_EQ(first.prov, Provenance::Baseline);
}

TEST(SoftwareDiftPass, BaselineExpandsMoreThanShift)
{
    // Software DIFT pays on every ALU op; SHIFT only at memory and
    // compares. Static size must reflect that.
    const char *src =
        "long f(long a) { long s = 0;"
        " for (long i = 0; i < 10; i++) s = s * 3 + a; return s; }";
    minic::CompileOptions copts;
    copts.requireMain = false;

    Program base = minic::compileProgram(src, copts);
    Program sw = minic::compileProgram(src, copts);
    BaselineOptions bopts;
    instrumentSoftwareDift(sw, bopts);
    Program sh = minic::compileProgram(src, copts);
    InstrumentOptions sopts;
    instrumentProgram(sh, sopts);

    EXPECT_GT(sw.staticInstrCount(), sh.staticInstrCount());
    EXPECT_GT(sh.staticInstrCount(), base.staticInstrCount());
}

TEST(SoftwareDift, EndToEndTagTracking)
{
    SessionOptions options;
    options.mode = TrackingMode::SoftwareDift;
    Session session(
        "char out[16];"
        "int main() {"
        "  char buf[16];"
        "  int fd = open(\"f\", 0);"
        "  int n = read(fd, buf, 15);"
        "  long x = buf[0] * 3 + 1;"     // taint through ALU ops
        "  out[0] = (char)x;"            // and back to memory
        "  long clean = 5 + 6;"
        "  return __arg_tainted(x) * 10 + __arg_tainted(clean)"
        "         + 100 * __mem_tainted(out);"
        "}",
        options);
    session.os().addFile("f", "Z");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 110);
}

TEST(SoftwareDift, MoviPurifiesRegisterTag)
{
    SessionOptions options;
    options.mode = TrackingMode::SoftwareDift;
    Session session(
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 8);"
        "  long x = buf[0];"
        "  x = 7;"                 // constant overwrites the tag
        "  return __arg_tainted(x);"
        "}",
        options);
    session.os().addFile("f", "Q");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(SoftwareDift, ChecksCanBeDisabled)
{
    // With address checks off (the default), a tainted index does not
    // trap — LIFT's policy surface is at control transfers.
    SessionOptions options;
    options.mode = TrackingMode::SoftwareDift;
    Session session(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0] & 63;"
        "  table[idx] = 1;"
        "  return table[idx];"
        "}",
        options);
    session.os().addFile("f", "\x05");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_TRUE(r.alerts.empty());
}

} // namespace
} // namespace shift
