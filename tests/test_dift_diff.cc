/**
 * @file
 * Differential equivalence: the async taint tier against the
 * synchronous instrumented engine. Every SPEC kernel, the httpd
 * workload, and all eight attack scenarios must produce the same
 * verdict tuple — exit state, policy alerts (policy, message,
 * function), detections — and, on clean runs, a bit-identical taint
 * bitmap (region-0 content hash). Dynamic counts are NOT compared:
 * the async engine runs the uninstrumented stream, so executing fewer
 * instructions is the point, and post-violation tag state is
 * unspecified once a run has been condemned (docs/ASYNC-TAINT.md).
 */

#include <gtest/gtest.h>

#include "workloads/attacks.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace shift
{
namespace
{

using workloads::attackScenarios;
using workloads::httpdSessionOptions;
using workloads::kHttpdRequest;
using workloads::kHttpdSource;
using workloads::provisionHttpdOs;
using workloads::runAttackScenario;
using workloads::SpecKernel;
using workloads::specKernels;

struct DiffRun
{
    RunResult result;
    uint64_t tagHash = 0; ///< taint bitmap (region 0)
    std::vector<std::string> responses;
};

DiffRun
captureRun(Session &session)
{
    DiffRun run;
    run.result = session.run();
    run.tagHash = session.machine().memory().contentHash(kTagRegion);
    run.responses = session.os().responses();
    return run;
}

void
expectSameVerdict(const DiffRun &sync, const DiffRun &async,
                  const std::string &what)
{
    EXPECT_EQ(sync.result.exited, async.result.exited) << what;
    EXPECT_EQ(sync.result.exitCode, async.result.exitCode) << what;
    EXPECT_EQ(sync.result.killedByPolicy, async.result.killedByPolicy)
        << what;
    ASSERT_EQ(sync.result.alerts.size(), async.result.alerts.size())
        << what
        << (async.result.alerts.empty()
                ? ""
                : " async=" + async.result.alerts.back().policy + ": " +
                      async.result.alerts.back().message)
        << (sync.result.alerts.empty()
                ? ""
                : " sync=" + sync.result.alerts.back().policy + ": " +
                      sync.result.alerts.back().message);
    for (size_t i = 0; i < sync.result.alerts.size(); ++i) {
        EXPECT_EQ(sync.result.alerts[i].policy,
                  async.result.alerts[i].policy)
            << what;
        EXPECT_EQ(sync.result.alerts[i].message,
                  async.result.alerts[i].message)
            << what;
        EXPECT_EQ(sync.result.alerts[i].function,
                  async.result.alerts[i].function)
            << what;
    }
    EXPECT_EQ(bool(sync.result.fault), bool(async.result.fault)) << what;
    if (sync.result.fault && async.result.fault) {
        EXPECT_EQ(sync.result.fault.kind, async.result.fault.kind)
            << what;
        EXPECT_EQ(sync.result.fault.context, async.result.fault.context)
            << what;
        EXPECT_EQ(sync.result.fault.detail, async.result.fault.detail)
            << what;
        EXPECT_EQ(sync.result.fault.function,
                  async.result.fault.function)
            << what;
    }
    EXPECT_EQ(sync.responses, async.responses) << what;
    // The bitmap is only deterministic while the run is clean: after a
    // violation the async consumer stops replaying (first-wins) while
    // the sync engine's partial instrumentation effects stand.
    if (sync.result.ok() && async.result.ok()) {
        EXPECT_EQ(sync.tagHash, async.tagHash)
            << what << ": taint bitmap";
    }
}

// --------------------------------------------------------------- SPEC

class AsyncDiffSpecTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, AsyncDiffSpecTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word),
                         [](const auto &info) {
                             return info.param == Granularity::Byte
                                        ? "byte"
                                        : "word";
                         });

DiffRun
runKernel(const SpecKernel &kernel, Granularity granularity, bool async)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.granularity = granularity;
    options.policy.taintFile = true;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.async.enabled = async;
    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    return captureRun(session);
}

TEST_P(AsyncDiffSpecTest, AllKernelsEquivalent)
{
    for (const SpecKernel &kernel : specKernels()) {
        DiffRun sync = runKernel(kernel, GetParam(), false);
        DiffRun async = runKernel(kernel, GetParam(), true);
        EXPECT_TRUE(sync.result.exited) << kernel.name;
        expectSameVerdict(sync, async, kernel.name);
    }
}

// -------------------------------------------------------------- httpd

TEST(AsyncDiffHttpd, ResponsesAndBitmapIdentical)
{
    DiffRun runs[2];
    for (int async = 0; async < 2; ++async) {
        SessionOptions options = httpdSessionOptions(
            TrackingMode::Shift, Granularity::Byte, {},
            ExecEngine::Predecoded);
        options.async.enabled = async != 0;
        Session session(kHttpdSource, options);
        provisionHttpdOs(session.os(), 512);
        for (int i = 0; i < 5; ++i)
            session.os().queueConnection(kHttpdRequest);
        runs[async] = captureRun(session);
    }
    EXPECT_TRUE(runs[0].result.exited);
    EXPECT_EQ(runs[0].responses.size(), 5u);
    expectSameVerdict(runs[0], runs[1], "httpd");
}

// ------------------------------------------------------------- attacks

// Both consumer placements must agree with the sync engine: the
// inline fold (the Auto resolution on this host) and the threaded
// ring consumer share replay bodies, but only a run through each
// proves the verdicts can't diverge.
using AttackDiffParam = std::tuple<Granularity, dift::AsyncConsumer>;

class AsyncDiffAttackTest
    : public ::testing::TestWithParam<AttackDiffParam>
{
};

INSTANTIATE_TEST_SUITE_P(
    Granularities, AsyncDiffAttackTest,
    ::testing::Combine(::testing::Values(Granularity::Byte,
                                         Granularity::Word),
                       ::testing::Values(dift::AsyncConsumer::Thread,
                                         dift::AsyncConsumer::Inline)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) == Granularity::Byte
                               ? "byte"
                               : "word";
        name += std::get<1>(info.param) == dift::AsyncConsumer::Thread
                    ? "Thread"
                    : "Inline";
        return name;
    });

TEST_P(AsyncDiffAttackTest, AllScenariosSameVerdicts)
{
    const Granularity granularity = std::get<0>(GetParam());
    dift::AsyncTaintOptions async;
    async.enabled = true;
    async.consumer = std::get<1>(GetParam());
    int detected = 0;
    for (const auto &scenario : attackScenarios()) {
        workloads::AttackRun exploitSync = runAttackScenario(
            scenario, true, granularity);
        workloads::AttackRun exploitAsync = runAttackScenario(
            scenario, true, granularity, ExecEngine::Predecoded, {},
            false, async);
        EXPECT_TRUE(exploitSync.detected) << scenario.name;
        EXPECT_TRUE(exploitAsync.detected)
            << scenario.name << ": async tier lost a detection"
            << (exploitAsync.result.alerts.empty()
                    ? std::string(" (no alerts, fault=") +
                          faultKindName(exploitAsync.result.fault.kind) +
                          " " + exploitAsync.result.fault.detail + ")"
                    : " (got " + exploitAsync.result.alerts.back().policy +
                          ": " + exploitAsync.result.alerts.back().message +
                          ")");
        detected += exploitAsync.detected;
        ASSERT_FALSE(exploitAsync.result.alerts.empty()) << scenario.name;
        EXPECT_EQ(exploitAsync.result.alerts.back().policy,
                  scenario.expectedPolicy)
            << scenario.name;
        if (!exploitSync.result.alerts.empty() &&
            !exploitAsync.result.alerts.empty()) {
            EXPECT_EQ(exploitSync.result.alerts.back().message,
                      exploitAsync.result.alerts.back().message)
                << scenario.name;
            EXPECT_EQ(exploitSync.result.alerts.back().function,
                      exploitAsync.result.alerts.back().function)
                << scenario.name;
        }

        workloads::AttackRun benignSync = runAttackScenario(
            scenario, false, granularity);
        workloads::AttackRun benignAsync = runAttackScenario(
            scenario, false, granularity, ExecEngine::Predecoded, {},
            false, async);
        EXPECT_FALSE(benignSync.falsePositive) << scenario.name;
        EXPECT_FALSE(benignAsync.falsePositive)
            << scenario.name << ": async tier false positive"
            << (benignAsync.result.alerts.empty()
                    ? ""
                    : " (" + benignAsync.result.alerts.back().policy +
                          ": " + benignAsync.result.alerts.back().message +
                          ")");
        EXPECT_EQ(benignSync.result.exitCode,
                  benignAsync.result.exitCode)
            << scenario.name;
    }
    // The paper's table-2 bar: all eight exploits detected.
    EXPECT_EQ(detected, 8) << "async tier must detect 8/8 attacks";
}

} // namespace
} // namespace shift
