/**
 * @file
 * Instrumentation-optimizer tests: unit counters plus the differential
 * taint-equivalence harness.
 *
 * The optimizer (src/opt/instr_opt.cc) deletes instrumentation work it
 * proves redundant, so its correctness statement is behavioural: with
 * the optimizer on, every workload must produce the same verdicts, the
 * same taint bitmap and the same data memory as with it off, while
 * executing no more instructions. The harness runs the SPEC kernels,
 * the httpd server and the full attack-scenario suite both ways and
 * compares:
 *
 *  - run outcome (exit/exit code/policy kill) and alert policy set;
 *  - the taint bitmap, via a content hash of the tag region;
 *  - final data and OS-region memory, via the same hash.
 *
 * The stack region is deliberately excluded from the memory
 * comparison: eliminating a spill/reload NaT purge legitimately leaves
 * different dead bytes in the purge's scratch slot below the stack
 * pointer (the purge's only architectural effect is on the purged
 * register, which the comparison covers through program results).
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "opt/instr_opt.hh"
#include "runtime/session.hh"
#include "session_helpers.hh"
#include "svc/fleet.hh"
#include "workloads/attacks.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace shift
{
namespace
{

using workloads::attackScenarios;
using workloads::AttackRun;
using workloads::httpdSessionOptions;
using workloads::kHttpdRequest;
using workloads::kHttpdSource;
using workloads::provisionHttpdOs;
using workloads::runAttackScenario;
using workloads::SpecKernel;
using workloads::specKernels;

OptimizerOptions
optOn()
{
    OptimizerOptions options;
    options.enable = true;
    return options;
}

/** One run's observable state for the differential comparison. */
struct DiffRun
{
    RunResult result;
    OptStats optStats;
    uint64_t tagHash = 0;  ///< taint bitmap (region 0)
    uint64_t dataHash = 0; ///< globals + heap (region 2)
    uint64_t osHash = 0;   ///< OS staging (region 4)
    std::vector<std::string> responses;
};

DiffRun
captureRun(Session &session)
{
    DiffRun run;
    run.result = session.run();
    run.optStats = session.optStats();
    const Memory &mem = session.machine().memory();
    run.tagHash = mem.contentHash(kTagRegion);
    run.dataHash = mem.contentHash(kDataRegion);
    run.osHash = mem.contentHash(kOsRegion);
    run.responses = session.os().responses();
    return run;
}

/** The core equivalence assertion between an off- and an on-run. */
void
expectEquivalent(const DiffRun &off, const DiffRun &on,
                 const std::string &what)
{
    EXPECT_EQ(off.result.exited, on.result.exited) << what;
    EXPECT_EQ(off.result.exitCode, on.result.exitCode) << what;
    EXPECT_EQ(off.result.killedByPolicy, on.result.killedByPolicy)
        << what;
    ASSERT_EQ(off.result.alerts.size(), on.result.alerts.size()) << what;
    for (size_t i = 0; i < off.result.alerts.size(); ++i) {
        EXPECT_EQ(off.result.alerts[i].policy, on.result.alerts[i].policy)
            << what;
    }
    EXPECT_EQ(off.tagHash, on.tagHash) << what << ": taint bitmap";
    EXPECT_EQ(off.dataHash, on.dataHash) << what << ": data memory";
    EXPECT_EQ(off.osHash, on.osHash) << what << ": OS memory";
    EXPECT_EQ(off.responses, on.responses) << what;
    // The optimizer must never execute MORE instructions.
    EXPECT_LE(on.result.instructions, off.result.instructions) << what;
    EXPECT_LE(on.result.cycles, off.result.cycles) << what;
}

// ---------------------------------------------------------------------
// Unit: counters and the master switch.
// ---------------------------------------------------------------------

TEST(OptimizerUnit, DisabledIsANoop)
{
    SessionOptions options = testutil::shiftOptions();
    Session session("int main() { int a[8]; a[3] = 7; return a[3]; }",
                    options);
    const OptStats &stats = session.optStats();
    EXPECT_EQ(stats.sizeBefore, stats.sizeAfter);
    EXPECT_EQ(stats.instrsRemoved, 0u);
    EXPECT_EQ(stats.instrsAdded, 0u);
}

TEST(OptimizerUnit, LoopWorkloadShrinksAndStillComputes)
{
    // A loop over a buffer: adjacent accesses through one base address
    // (fold CSE), induction-variable compares (relax elimination) and
    // back-to-back stores (dead updates) all have something to elide.
    const char *source =
        "char buf[256];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  int n = read(fd, buf, 255);\n"
        "  close(fd);\n"
        "  long sum = 0;\n"
        "  for (int i = 0; i < n; i++) {\n"
        "    buf[i] = (char)(buf[i] + 1);\n"
        "    buf[i] = (char)(buf[i] ^ 3);\n"
        "    sum += buf[i];\n"
        "  }\n"
        "  return (int)(sum & 127);\n"
        "}\n";

    DiffRun runs[2];
    for (bool enable : {false, true}) {
        SessionOptions options = testutil::shiftOptions();
        if (enable)
            options.optimize = optOn();
        Session session(source, options);
        session.os().addFile("input.dat", "differential-check-input");
        runs[enable] = captureRun(session);
    }

    expectEquivalent(runs[0], runs[1], "loop workload");
    const OptStats &stats = runs[1].optStats;
    EXPECT_GT(stats.instrsRemoved, 0u);
    EXPECT_LT(stats.sizeAfter, stats.sizeBefore);
    EXPECT_LT(runs[1].result.instructions, runs[0].result.instructions);
}

// ---------------------------------------------------------------------
// Differential: SPEC kernels, both granularities.
// ---------------------------------------------------------------------

class OptDiffSpecTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, OptDiffSpecTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word));

DiffRun
runKernel(const SpecKernel &kernel, Granularity granularity, bool enable)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.granularity = granularity;
    options.policy.taintFile = true;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    if (enable)
        options.optimize = optOn();
    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    return captureRun(session);
}

TEST_P(OptDiffSpecTest, AllKernelsEquivalent)
{
    uint64_t removedTotal = 0;
    for (const SpecKernel &kernel : specKernels()) {
        DiffRun off = runKernel(kernel, GetParam(), false);
        DiffRun on = runKernel(kernel, GetParam(), true);
        EXPECT_TRUE(off.result.exited) << kernel.name;
        expectEquivalent(off, on, kernel.name);
        removedTotal += on.optStats.instrsRemoved;
    }
    // The pass must actually be doing something across the suite.
    EXPECT_GT(removedTotal, 0u);
}

// ---------------------------------------------------------------------
// Differential: httpd request serving, end to end.
// ---------------------------------------------------------------------

TEST(OptDiffHttpd, ResponsesAndMemoryIdentical)
{
    DiffRun runs[2];
    for (bool enable : {false, true}) {
        SessionOptions options = httpdSessionOptions(
            TrackingMode::Shift, Granularity::Byte, {},
            ExecEngine::Predecoded);
        if (enable)
            options.optimize = optOn();
        Session session(kHttpdSource, options);
        provisionHttpdOs(session.os(), 512);
        for (int i = 0; i < 5; ++i)
            session.os().queueConnection(kHttpdRequest);
        runs[enable] = captureRun(session);
    }
    EXPECT_TRUE(runs[0].result.exited);
    EXPECT_EQ(runs[0].responses.size(), 5u);
    expectEquivalent(runs[0], runs[1], "httpd");
    EXPECT_GT(runs[1].optStats.instrsRemoved, 0u);
}

// ---------------------------------------------------------------------
// Differential: the full attack suite. Detection is non-negotiable:
// every exploit still trips its expected policy, every benign run
// stays alert-free, at both granularities.
// ---------------------------------------------------------------------

class OptDiffAttackTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, OptDiffAttackTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word));

TEST_P(OptDiffAttackTest, AllScenariosSameVerdicts)
{
    for (const auto &scenario : attackScenarios()) {
        AttackRun exploitOff = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded);
        AttackRun exploitOn = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded, optOn());
        EXPECT_TRUE(exploitOff.detected) << scenario.name;
        EXPECT_TRUE(exploitOn.detected) << scenario.name;
        ASSERT_FALSE(exploitOn.result.alerts.empty()) << scenario.name;
        EXPECT_EQ(exploitOn.result.alerts.back().policy,
                  scenario.expectedPolicy)
            << scenario.name;

        AttackRun benignOff = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded);
        AttackRun benignOn = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded, optOn());
        EXPECT_FALSE(benignOff.falsePositive) << scenario.name;
        EXPECT_FALSE(benignOn.falsePositive) << scenario.name;
        EXPECT_EQ(benignOff.result.exitCode, benignOn.result.exitCode)
            << scenario.name;
        EXPECT_LE(benignOn.result.instructions,
                  benignOff.result.instructions)
            << scenario.name;
    }
}

// ---------------------------------------------------------------------
// Fleet path: an optimized template serves identically, and the
// report carries the optimizer attribution and per-job savings
// against an unoptimized reference twin.
// ---------------------------------------------------------------------

TEST(OptFleet, TemplateGetsOptimizedProgramAndReportsSavings)
{
    auto makeTemplate = [](bool enable) {
        SessionOptions options = httpdSessionOptions(
            TrackingMode::Shift, Granularity::Byte, {},
            ExecEngine::Predecoded);
        if (enable)
            options.optimize = optOn();
        auto tmpl = std::make_unique<SessionTemplate>(
            std::string(kHttpdSource), std::move(options));
        provisionHttpdOs(tmpl->os(), 512);
        return tmpl;
    };

    std::unique_ptr<SessionTemplate> optimized = makeTemplate(true);
    std::unique_ptr<SessionTemplate> reference = makeTemplate(false);
    EXPECT_GT(optimized->optStats().instrsRemoved, 0u);

    std::vector<svc::FleetJob> jobs;
    for (int j = 0; j < 4; ++j) {
        svc::FleetJob job;
        job.id = j;
        job.requests = {kHttpdRequest, kHttpdRequest};
        jobs.push_back(std::move(job));
    }

    svc::FleetOptions fleetOptions;
    fleetOptions.workers = 2;
    fleetOptions.reference = reference.get();
    svc::Fleet fleet(*optimized, fleetOptions);
    svc::FleetReport report = fleet.serve(jobs);

    EXPECT_TRUE(report.allOk);
    EXPECT_EQ(report.jobs, 4u);
    EXPECT_EQ(report.requests, 8u);
    EXPECT_GT(report.optStats.instrsRemoved, 0u);
    EXPECT_GT(report.totalSavedSimCycles, 0);
    // Identical jobs must report identical savings (determinism).
    for (const svc::FleetJobResult &jr : report.jobResults) {
        EXPECT_EQ(jr.savedSimCycles,
                  report.jobResults.front().savedSimCycles)
            << "job " << jr.id;
    }
}

} // namespace
} // namespace shift
