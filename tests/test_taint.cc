/**
 * @file
 * TaintMap tests: the host-side view of the bitmap must agree with
 * itself (set/clear/query) and with the figure-4 mapping that
 * instrumented code computes, at both granularities.
 */

#include <gtest/gtest.h>

#include <random>

#include "core/taint_map.hh"

namespace shift
{
namespace
{

constexpr uint64_t kBase = regionBase(kDataRegion) + 0x10000;

class TaintMapTest : public ::testing::TestWithParam<Granularity>
{
  protected:
    Memory mem;
};

INSTANTIATE_TEST_SUITE_P(Granularities, TaintMapTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word),
                         [](const auto &info) {
                             return info.param == Granularity::Byte
                                        ? "byte"
                                        : "word";
                         });

TEST_P(TaintMapTest, TaintAndClearRange)
{
    TaintMap tm(mem, GetParam());
    tm.taint(kBase + 10, 20);
    EXPECT_TRUE(tm.anyTainted(kBase + 10, 20));
    EXPECT_TRUE(tm.isTainted(kBase + 15));
    EXPECT_FALSE(tm.anyTainted(kBase + 100, 8));
    tm.clear(kBase + 10, 20);
    EXPECT_FALSE(tm.anyTainted(kBase, 64));
}

TEST_P(TaintMapTest, GranularityResolution)
{
    TaintMap tm(mem, GetParam());
    tm.taint(kBase, 1);
    if (GetParam() == Granularity::Byte) {
        EXPECT_TRUE(tm.isTainted(kBase));
        EXPECT_FALSE(tm.isTainted(kBase + 1));
    } else {
        // One bit covers the whole 8-byte word.
        EXPECT_TRUE(tm.isTainted(kBase + 1));
        EXPECT_TRUE(tm.isTainted(kBase + 7));
        EXPECT_FALSE(tm.isTainted(kBase + 8));
    }
}

TEST_P(TaintMapTest, TaintOfReportsPerByte)
{
    TaintMap tm(mem, GetParam());
    tm.taint(kBase + 8, 8);
    std::vector<bool> taint = tm.taintOf(kBase, 24);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(taint[size_t(i)]) << i;
    for (int i = 8; i < 16; ++i)
        EXPECT_TRUE(taint[size_t(i)]) << i;
    for (int i = 16; i < 24; ++i)
        EXPECT_FALSE(taint[size_t(i)]) << i;
}

TEST_P(TaintMapTest, CountTainted)
{
    TaintMap tm(mem, GetParam());
    tm.taint(kBase, 16);
    uint64_t units = GetParam() == Granularity::Byte ? 16u : 2u;
    EXPECT_EQ(tm.countTainted(kBase, 16), units);
}

TEST_P(TaintMapTest, RandomizedSetClearConsistency)
{
    TaintMap tm(mem, GetParam());
    std::mt19937_64 rng(GetParam() == Granularity::Byte ? 11 : 22);
    unsigned unit = 1u << granularityShift(GetParam());

    // Model at unit resolution; compare against the real map.
    std::map<uint64_t, bool> model;
    for (int step = 0; step < 500; ++step) {
        uint64_t addr = kBase + (rng() % 4096);
        uint64_t len = 1 + rng() % 64;
        bool set = rng() & 1;
        if (set)
            tm.taint(addr, len);
        else
            tm.clear(addr, len);
        uint64_t first = addr & ~uint64_t(unit - 1);
        for (uint64_t a = first; a < addr + len; a += unit)
            model[a] = set;
    }
    for (const auto &kv : model)
        EXPECT_EQ(tm.isTainted(kv.first), kv.second) << kv.first;
}

TEST_P(TaintMapTest, AgreesWithArchitecturalMapping)
{
    // The host-side map and the instruction sequence must address the
    // same bit: check against a direct bitmap poke via tagByteAddr.
    TaintMap tm(mem, GetParam());
    std::mt19937_64 rng(5);
    for (int i = 0; i < 200; ++i) {
        unsigned region = 2 + rng() % 2;
        uint64_t va = regionBase(region) + (rng() & 0xFFFFF8);
        tm.taint(va, 1);
        uint64_t tagAddr = tagByteAddr(va, GetParam());
        uint64_t byte = 0;
        ASSERT_EQ(mem.read(tagAddr, 1, byte), MemFault::None);
        EXPECT_TRUE((byte >> tagBitIndex(va, GetParam())) & 1);
        tm.clear(va, 1);
    }
}

TEST_P(TaintMapTest, DistinctRegionsDistinctTags)
{
    TaintMap tm(mem, GetParam());
    uint64_t offset = 0x2000;
    tm.taint(regionBase(2) + offset, 8);
    EXPECT_FALSE(tm.anyTainted(regionBase(3) + offset, 8));
}

} // namespace
} // namespace shift
