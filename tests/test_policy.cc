/**
 * @file
 * Policy-engine tests: each table-1 rule in isolation, configuration
 * parsing, and the NaT-fault-to-policy mapping.
 */

#include <gtest/gtest.h>

#include "core/policy.hh"
#include "support/logging.hh"

namespace shift
{
namespace
{

PolicyConfig
allOn()
{
    PolicyConfig policy;
    policy.h1 = policy.h2 = policy.h3 = policy.h4 = policy.h5 = true;
    return policy;
}

std::vector<bool>
taintAll(const std::string &s)
{
    return std::vector<bool>(s.size(), true);
}

std::vector<bool>
taintNone(const std::string &s)
{
    return std::vector<bool>(s.size(), false);
}

TEST(PolicyH1, TaintedAbsolutePath)
{
    PolicyEngine pe(allOn());
    std::string path = "/etc/passwd";
    auto alert = pe.checkFileOpen(path, taintAll(path));
    ASSERT_TRUE(alert);
    EXPECT_EQ(alert->policy, "H1");
    // Clean absolute path: the server's own config files are fine.
    EXPECT_FALSE(pe.checkFileOpen(path, taintNone(path)));
    // Tainted relative path: H1 does not care.
    std::string rel = "docs/readme";
    EXPECT_FALSE(pe.checkFileOpen(rel, taintAll(rel)));
}

TEST(PolicyH2, TaintedEscapeFromDocroot)
{
    PolicyConfig cfg = allOn();
    cfg.h1 = false;
    cfg.docRoot = "/www";
    PolicyEngine pe(cfg);

    std::string bad = "/www/pages/../../etc/passwd";
    // Only the attacker-controlled suffix is tainted.
    std::vector<bool> taint(bad.size(), false);
    for (size_t i = 11; i < bad.size(); ++i)
        taint[i] = true;
    auto alert = pe.checkFileOpen(bad, taint);
    ASSERT_TRUE(alert);
    EXPECT_EQ(alert->policy, "H2");

    // Descending then ascending within the root is legal.
    std::string ok = "/www/a/b/../c.txt";
    EXPECT_FALSE(pe.checkFileOpen(ok, taintAll(ok)));

    // An escape the *server itself* wrote (clean) is not flagged.
    EXPECT_FALSE(pe.checkFileOpen(bad, taintNone(bad)));
}

TEST(PolicyH3, TaintedSqlMetacharacters)
{
    PolicyEngine pe(allOn());
    std::string q = "SELECT * FROM t WHERE id = '1' OR '1'='1'";
    // Clean query (application-built constant): fine.
    EXPECT_FALSE(pe.checkSql(q, taintNone(q)));
    // Tainted quote: alert.
    std::vector<bool> taint(q.size(), false);
    taint[q.find('\'')] = true;
    auto alert = pe.checkSql(q, taint);
    ASSERT_TRUE(alert);
    EXPECT_EQ(alert->policy, "H3");
    // Tainted digits only: fine (a numeric id is legitimate).
    std::string numeric = "SELECT * FROM t WHERE id = 42";
    std::vector<bool> numTaint(numeric.size(), false);
    numTaint[numeric.size() - 1] = true;
    numTaint[numeric.size() - 2] = true;
    EXPECT_FALSE(pe.checkSql(numeric, numTaint));
    // Tainted comment marker.
    std::string cmt = "SELECT 1 -- drop";
    std::vector<bool> cmtTaint(cmt.size(), false);
    cmtTaint[9] = true; // first '-'
    ASSERT_TRUE(pe.checkSql(cmt, cmtTaint));
}

TEST(PolicyH4, TaintedShellMetacharacters)
{
    PolicyEngine pe(allOn());
    std::string cmd = "convert img.png; rm -rf /";
    std::vector<bool> taint(cmd.size(), false);
    taint[cmd.find(';')] = true;
    auto alert = pe.checkSystem(cmd, taint);
    ASSERT_TRUE(alert);
    EXPECT_EQ(alert->policy, "H4");
    EXPECT_FALSE(pe.checkSystem(cmd, taintNone(cmd)));
    std::string safe = "convert userpic.png";
    EXPECT_FALSE(pe.checkSystem(safe, taintAll(safe)));
}

TEST(PolicyH5, TaintedScriptTag)
{
    PolicyEngine pe(allOn());
    std::string html = "<html><ScRiPt>evil()</script></html>";
    std::vector<bool> taint(html.size(), false);
    for (size_t i = 6; i < 14; ++i)
        taint[i] = true;
    auto alert = pe.checkHtml(html, taint);
    ASSERT_TRUE(alert);
    EXPECT_EQ(alert->policy, "H5");
    // The page's own script tag (clean) is fine.
    EXPECT_FALSE(pe.checkHtml(html, taintNone(html)));
    // Tainted text that isn't a script tag is fine.
    std::string benign = "<html>user said hello</html>";
    EXPECT_FALSE(pe.checkHtml(benign, taintAll(benign)));
}

TEST(PolicyLx, NatFaultMapping)
{
    PolicyEngine pe(allOn());
    Fault fault;
    fault.kind = FaultKind::NatConsumption;

    fault.context = FaultContext::LoadAddress;
    ASSERT_TRUE(pe.natFaultAlert(fault));
    EXPECT_EQ(pe.natFaultAlert(fault)->policy, "L1");

    fault.context = FaultContext::StoreAddress;
    EXPECT_EQ(pe.natFaultAlert(fault)->policy, "L2");

    for (FaultContext ctx : {FaultContext::ControlFlow,
                             FaultContext::SyscallArg,
                             FaultContext::AppRegister}) {
        fault.context = ctx;
        EXPECT_EQ(pe.natFaultAlert(fault)->policy, "L3");
    }

    fault.context = FaultContext::StoreValue;
    EXPECT_FALSE(pe.natFaultAlert(fault)); // instrumentation bug, not
                                           // a policy event
}

TEST(PolicyLx, DisabledPoliciesPassThrough)
{
    PolicyConfig cfg;
    cfg.l1 = cfg.l2 = cfg.l3 = false;
    PolicyEngine pe(cfg);
    Fault fault;
    fault.kind = FaultKind::NatConsumption;
    for (FaultContext ctx : {FaultContext::LoadAddress,
                             FaultContext::StoreAddress,
                             FaultContext::ControlFlow}) {
        fault.context = ctx;
        EXPECT_FALSE(pe.natFaultAlert(fault));
    }
}

TEST(PolicyConfigParse, FullFile)
{
    PolicyConfig cfg = PolicyConfig::fromText(
        "[sources]\n"
        "network = taint\n"
        "file = clean\n"
        "stdin = clean\n"
        "[policies]\n"
        "H1 = on\nH3 = on\nL1 = off\n"
        "[tracking]\n"
        "granularity = word\n"
        "docroot = /srv/http\n"
        "action = log\n");
    EXPECT_TRUE(cfg.taintNetwork);
    EXPECT_FALSE(cfg.taintFile);
    EXPECT_FALSE(cfg.taintStdin);
    EXPECT_TRUE(cfg.h1);
    EXPECT_FALSE(cfg.h2);
    EXPECT_TRUE(cfg.h3);
    EXPECT_FALSE(cfg.l1);
    EXPECT_TRUE(cfg.l2); // default on
    EXPECT_EQ(cfg.granularity, Granularity::Word);
    EXPECT_EQ(cfg.docRoot, "/srv/http");
    EXPECT_FALSE(cfg.alertKills);
}

TEST(PolicyConfigParse, Defaults)
{
    PolicyConfig cfg = PolicyConfig::fromText("");
    EXPECT_TRUE(cfg.taintNetwork);
    EXPECT_TRUE(cfg.l1 && cfg.l2 && cfg.l3);
    EXPECT_FALSE(cfg.h1 || cfg.h2 || cfg.h3 || cfg.h4 || cfg.h5);
    EXPECT_EQ(cfg.granularity, Granularity::Byte);
    EXPECT_TRUE(cfg.alertKills);
}

TEST(PolicyConfigParse, Errors)
{
    EXPECT_THROW(PolicyConfig::fromText("[sources]\nnetwork = maybe\n"),
                 FatalError);
    EXPECT_THROW(
        PolicyConfig::fromText("[tracking]\ngranularity = nibble\n"),
        FatalError);
    EXPECT_THROW(PolicyConfig::fromText("[tracking]\naction = explode\n"),
                 FatalError);
}

TEST(PolicyChannels, SourceToggles)
{
    PolicyConfig cfg;
    cfg.taintNetwork = true;
    cfg.taintFile = false;
    PolicyEngine pe(cfg);
    EXPECT_TRUE(pe.taintChannel("network"));
    EXPECT_FALSE(pe.taintChannel("file"));
    EXPECT_FALSE(pe.taintChannel("unknown-channel"));
}

} // namespace
} // namespace shift
