/**
 * @file
 * Property-based tests.
 *
 * 1. Compiler correctness: randomly generated straight-line MiniC
 *    programs must compute exactly what a host-side oracle computes.
 * 2. Transparency: the same random program, with its inputs tainted
 *    through a simulated file, must produce identical results under
 *    every tracking configuration (none / SHIFT byte / SHIFT word /
 *    SHIFT enhanced / software baseline) — instrumentation must never
 *    change program semantics, no matter what the program does with
 *    tainted data.
 */

#include <gtest/gtest.h>

#include <random>

#include "runtime/session.hh"

namespace shift
{
namespace
{

constexpr int kNumVars = 8;

/** Generates a random expression string while computing its value. */
class ExprGen
{
  public:
    ExprGen(std::mt19937_64 &rng, const int64_t *vars)
        : rng_(rng), vars_(vars)
    {}

    /** Returns {source text, host-evaluated value}. */
    std::pair<std::string, int64_t>
    gen(int depth)
    {
        switch (depth <= 0 ? rng_() % 2 : rng_() % 8) {
          case 0: { // literal
            int64_t v = int64_t(rng_() % 2000) - 1000;
            return {std::to_string(v), v};
          }
          case 1: { // variable
            int i = int(rng_() % kNumVars);
            return {std::string(1, char('a' + i)), vars_[i]};
          }
          case 2: { // unary minus (space avoids '--' maximal munch)
            auto [s, v] = gen(depth - 1);
            return {"(- " + s + ")", -v};
          }
          case 3: { // comparison
            auto [sa, va] = gen(depth - 1);
            auto [sb, vb] = gen(depth - 1);
            static const char *rel[] = {"<", "<=", ">", ">=", "==",
                                        "!="};
            int r = int(rng_() % 6);
            bool result;
            switch (r) {
              case 0: result = va < vb; break;
              case 1: result = va <= vb; break;
              case 2: result = va > vb; break;
              case 3: result = va >= vb; break;
              case 4: result = va == vb; break;
              default: result = va != vb; break;
            }
            return {"(" + sa + " " + rel[r] + " " + sb + ")",
                    result ? 1 : 0};
          }
          case 4: { // ternary
            auto [sc, vc] = gen(depth - 1);
            auto [sa, va] = gen(depth - 1);
            auto [sb, vb] = gen(depth - 1);
            return {"(" + sc + " ? " + sa + " : " + sb + ")",
                    vc ? va : vb};
          }
          case 5: { // division/modulo with a safe divisor
            auto [sa, va] = gen(depth - 1);
            auto [sb, vb] = gen(depth - 1);
            int64_t divisor = (vb & 15) + 1;
            std::string sdiv = "((" + sb + " & 15) + 1)";
            if (rng_() & 1)
                return {"(" + sa + " / " + sdiv + ")", va / divisor};
            return {"(" + sa + " % " + sdiv + ")", va % divisor};
          }
          default: { // binary arithmetic / bitwise / shifts
            auto [sa, va] = gen(depth - 1);
            auto [sb, vb] = gen(depth - 1);
            switch (rng_() % 7) {
              case 0:
                return {"(" + sa + " + " + sb + ")",
                        int64_t(uint64_t(va) + uint64_t(vb))};
              case 1:
                return {"(" + sa + " - " + sb + ")",
                        int64_t(uint64_t(va) - uint64_t(vb))};
              case 2:
                return {"(" + sa + " * " + sb + ")",
                        int64_t(uint64_t(va) * uint64_t(vb))};
              case 3:
                return {"(" + sa + " & " + sb + ")", va & vb};
              case 4:
                return {"(" + sa + " | " + sb + ")", va | vb};
              case 5:
                return {"(" + sa + " ^ " + sb + ")", va ^ vb};
              default: {
                int sh = int(rng_() % 8);
                if (rng_() & 1) {
                    return {"(" + sa + " << " + std::to_string(sh) +
                                ")",
                            int64_t(uint64_t(va) << sh)};
                }
                return {"(" + sa + " >> " + std::to_string(sh) + ")",
                        va >> sh};
              }
            }
          }
        }
    }

  private:
    std::mt19937_64 &rng_;
    const int64_t *vars_;
};

/** A random program plus its oracle result. */
struct RandomProgram
{
    std::string source;
    int64_t expected; // exit code in [0, 128)
};

RandomProgram
makeRandomProgram(uint64_t seed, bool taintedInputs)
{
    std::mt19937_64 rng(seed);
    int64_t vars[kNumVars];
    std::string body;

    if (taintedInputs) {
        body += "  char buf[16];\n"
                "  int fd = open(\"input.dat\", 0);\n"
                "  read(fd, buf, 8);\n"
                "  close(fd);\n";
        for (int i = 0; i < kNumVars; ++i) {
            // Host oracle knows the file content: byte i is 10+i.
            vars[i] = 10 + i;
            body += std::string("  long ") + char('a' + i) + " = buf[" +
                    std::to_string(i) + "];\n";
        }
    } else {
        for (int i = 0; i < kNumVars; ++i) {
            vars[i] = int64_t(rng() % 100);
            body += std::string("  long ") + char('a' + i) + " = " +
                    std::to_string(vars[i]) + ";\n";
        }
    }

    int statements = 6 + int(rng() % 10);
    for (int s = 0; s < statements; ++s) {
        ExprGen gen(rng, vars);
        auto [text, value] = gen.gen(3);
        int dst = int(rng() % kNumVars);
        body += std::string("  ") + char('a' + dst) + " = " + text +
                ";\n";
        vars[dst] = value;
    }

    int64_t check = 0;
    std::string checkExpr = "0";
    for (int i = 0; i < kNumVars; ++i) {
        check ^= vars[i];
        checkExpr += std::string(" ^ ") + char('a' + i);
    }

    RandomProgram out;
    out.source = "int main() {\n" + body + "  return (" + checkExpr +
                 ") & 127;\n}\n";
    out.expected = check & 127;
    return out;
}

class CompilerOracleTest : public ::testing::TestWithParam<uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerOracleTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST_P(CompilerOracleTest, RandomProgramMatchesHostOracle)
{
    RandomProgram rp = makeRandomProgram(GetParam(), false);
    SessionOptions options;
    options.mode = TrackingMode::None;
    Session session(rp.source, options);
    RunResult r = session.run();
    ASSERT_TRUE(r.exited)
        << faultKindName(r.fault.kind) << "\n" << rp.source;
    EXPECT_EQ(r.exitCode, rp.expected) << rp.source;
}

class TransparencyTest : public ::testing::TestWithParam<uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyTest,
                         ::testing::Range<uint64_t>(100, 116));

TEST_P(TransparencyTest, AllTrackingModesComputeTheSameResult)
{
    RandomProgram rp = makeRandomProgram(GetParam(), true);

    auto runMode = [&](TrackingMode mode, Granularity g,
                       bool enhanced, bool cse = false) {
        SessionOptions options;
        options.mode = mode;
        options.policy.granularity = g;
        options.policy.taintFile = true;
        options.instr.reuseTagAddr = cse;
        if (enhanced) {
            options.features.natSetClear = true;
            options.features.natAwareCompare = true;
        }
        Session session(rp.source, options);
        std::string input;
        for (int i = 0; i < 8; ++i)
            input.push_back(char(10 + i));
        session.os().addFile("input.dat", input);
        RunResult r = session.run();
        EXPECT_TRUE(r.exited)
            << faultKindName(r.fault.kind) << " (" << r.fault.detail
            << ")\n" << rp.source;
        EXPECT_TRUE(r.alerts.empty());
        return r.exitCode;
    };

    int64_t expected = rp.expected;
    EXPECT_EQ(runMode(TrackingMode::None, Granularity::Byte, false),
              expected);
    EXPECT_EQ(runMode(TrackingMode::Shift, Granularity::Byte, false),
              expected);
    EXPECT_EQ(runMode(TrackingMode::Shift, Granularity::Word, false),
              expected);
    EXPECT_EQ(runMode(TrackingMode::Shift, Granularity::Byte, true),
              expected);
    EXPECT_EQ(runMode(TrackingMode::Shift, Granularity::Byte, false,
                      /*cse=*/true),
              expected);
    EXPECT_EQ(runMode(TrackingMode::SoftwareDift, Granularity::Byte,
                      false),
              expected);
}

TEST(TransparencyTest2, TaintSurvivesRegisterPressureSpills)
{
    // More live tainted values than the register pool: taint must ride
    // spill/fill (the NaT sidecar) and come back intact.
    std::string src =
        "char buf[32];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  read(fd, buf, 20);\n";
    for (int i = 0; i < 20; ++i)
        src += "  long v" + std::to_string(i) + " = buf[" +
               std::to_string(i) + "];\n";
    src += "  long s = 0;\n";
    for (int i = 0; i < 20; ++i)
        src += "  s = s + v" + std::to_string(i) + ";\n";
    src += "  return __arg_tainted(s);\n}\n";

    SessionOptions options;
    options.mode = TrackingMode::Shift;
    Session session(src, options);
    session.os().addFile("input.dat", std::string(20, 'x'));
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 1);
}

} // namespace
} // namespace shift
