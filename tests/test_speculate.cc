/**
 * @file
 * Control-speculation tests (paper sections 2.2 and 3.3.4): the pass
 * hoists loads into ld.s/chk.s form without changing program results;
 * clean data rides the fast path, tainted data diverts to recovery
 * where tracking is preserved.
 */

#include <gtest/gtest.h>

#include "lang/compiler.hh"
#include "lang/speculate.hh"
#include "runtime/session.hh"

namespace shift
{
namespace
{

// A loop whose body loads and immediately uses the result: the classic
// load-use stall the speculator targets.
const char *kHotLoop =
    "int data[256];\n"
    "int main() {\n"
    "  for (int i = 0; i < 256; i++) data[i] = i & 31;\n"
    "  int s = 0;\n"
    "  for (int r = 0; r < 40; r++) {\n"
    "    for (int i = 0; i < 256; i++) {\n"
    "      s += data[i];\n"
    "    }\n"
    "  }\n"
    "  return s & 127;\n"
    "}\n";

TEST(Speculate, PassHoistsLoads)
{
    Program program = minic::compileProgram(kHotLoop);
    minic::SpeculateStats stats = minic::speculateLoads(program);
    EXPECT_GT(stats.candidates, 0u);
    EXPECT_GT(stats.hoisted, 0u);

    // The transformed function contains ld.s and chk.s pairs.
    const Function &fn =
        program.functions[*program.findFunction("main")];
    int specLoads = 0;
    int checks = 0;
    for (const Instr &instr : fn.code) {
        if (instr.op == Opcode::Ld && instr.spec)
            ++specLoads;
        if (instr.op == Opcode::Chk)
            ++checks;
    }
    EXPECT_EQ(specLoads, checks);
    EXPECT_GT(specLoads, 0);
}

TEST(Speculate, ResultsUnchanged)
{
    SessionOptions plain;
    plain.mode = TrackingMode::None;
    Session base(kHotLoop, plain);
    RunResult baseRun = base.run();
    ASSERT_TRUE(baseRun.exited);

    SessionOptions spec = plain;
    spec.speculate = true;
    Session opt(kHotLoop, spec);
    RunResult optRun = opt.run();
    ASSERT_TRUE(optRun.exited)
        << faultKindName(optRun.fault.kind) << " ("
        << optRun.fault.detail << ")";
    EXPECT_EQ(optRun.exitCode, baseRun.exitCode);
    EXPECT_GT(opt.speculateStats().hoisted, 0u);
}

TEST(Speculate, SpeculationHidesLoadUseStalls)
{
    SessionOptions plain;
    plain.mode = TrackingMode::None;
    Session base(kHotLoop, plain);
    uint64_t baseCycles = base.run().cycles;

    SessionOptions spec = plain;
    spec.speculate = true;
    Session opt(kHotLoop, spec);
    uint64_t optCycles = opt.run().cycles;

    EXPECT_LT(optCycles, baseCycles);
}

TEST(Speculate, UnderShiftCleanDataStaysOnFastPath)
{
    // With SHIFT tracking and clean input, speculation must neither
    // fault nor change results; the chk.s never fires.
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.speculate = true;
    Session session(kHotLoop, options);
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind) << " ("
                          << r.fault.detail << ")";
    EXPECT_TRUE(r.alerts.empty());

    SessionOptions plain;
    plain.mode = TrackingMode::None;
    Session base(kHotLoop, plain);
    EXPECT_EQ(r.exitCode, base.run().exitCode);
}

TEST(Speculate, TaintDivertsToRecoveryAndIsPreserved)
{
    // Tainted data makes the chk.s fire: the recovery path re-executes
    // the load with full tracking, so the result is both correct and
    // still tainted (paper section 3.3.4).
    const char *src =
        "char buf[64];\n"
        "int main() {\n"
        "  int fd = open(\"input.txt\", 0);\n"
        "  int n = read(fd, buf, 63);\n"
        "  int s = 0;\n"
        "  for (int i = 0; i < n; i++) {\n"
        "    s += buf[i];\n"
        "  }\n"
        "  return (s & 63) * 2 + __arg_tainted(s);\n"
        "}\n";

    auto runWith = [&](bool speculate, bool taint) {
        SessionOptions options;
        options.mode = TrackingMode::Shift;
        options.speculate = speculate;
        options.policy.taintFile = taint;
        Session session(src, options);
        session.os().addFile("input.txt", "speculation!");
        RunResult r = session.run();
        EXPECT_TRUE(r.exited) << faultKindName(r.fault.kind) << " ("
                              << r.fault.detail << ")";
        EXPECT_TRUE(r.alerts.empty());
        return r;
    };

    RunResult plainTainted = runWith(false, true);
    RunResult specTainted = runWith(true, true);
    RunResult specClean = runWith(true, false);

    // Same value either way; taint preserved through recovery.
    EXPECT_EQ(specTainted.exitCode, plainTainted.exitCode);
    EXPECT_EQ(specTainted.exitCode % 2, 1);  // tainted
    EXPECT_EQ(specClean.exitCode % 2, 0);    // clean input: no taint
    EXPECT_EQ(specClean.exitCode / 2, specTainted.exitCode / 2);

    // The paper's caveat: tainted data turns speculation wins into
    // recovery costs.
    EXPECT_GT(specTainted.cycles, specClean.cycles);
}

TEST(Speculate, GenuineDeferredFaultStillFaultsInRecovery)
{
    // A NaT that reaches a chk.s because the ADDRESS was bad must not
    // be swallowed: recovery re-executes non-speculatively and raises
    // the real fault (precise exceptions, paper section 2.2).
    const char *src =
        "int main() {\n"
        "  long flag = 1;\n"
        "  long addr = ((long)1 << 62) + 8;\n" // data region, unmapped
        "  long *p = (long*)addr;\n"
        "  long v = 0;\n"
        "  if (flag) { v = *p; }\n"
        "  return (int)v;\n"
        "}\n";
    SessionOptions options;
    options.mode = TrackingMode::None;
    options.speculate = true;
    Session session(src, options);
    RunResult r = session.run();
    EXPECT_GT(session.speculateStats().hoisted, 0u);
    EXPECT_FALSE(r.exited);
    EXPECT_TRUE(bool(r.fault));
    EXPECT_EQ(r.fault.kind, FaultKind::IllegalAddress);
}

} // namespace
} // namespace shift
