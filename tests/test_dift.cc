/**
 * @file
 * Async taint tier tests: the SPSC trace ring (wrap-around, lossless
 * backpressure, TSan-verified producer/consumer edges), the option
 * validator, the annotation pass, the consumer's replay semantics,
 * and end-to-end Session runs with the tier enabled.
 */

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dift/annotate.hh"
#include "dift/event.hh"
#include "dift/spsc_ring.hh"
#include "dift/tier.hh"
#include "lang/compiler.hh"
#include "support/bitops.hh"
#include "session_helpers.hh"

namespace shift
{
namespace
{

using testutil::shiftOptions;

// ---------------------------------------------------------------- ring

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(dift::SpscRing<int>(1).capacity(), 64u);
    EXPECT_EQ(dift::SpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(dift::SpscRing<int>(65).capacity(), 128u);
    EXPECT_EQ(dift::SpscRing<int>(100).capacity(), 128u);
    EXPECT_EQ(dift::SpscRing<int>(1 << 16).capacity(), 1u << 16);
}

TEST(SpscRing, WrapAroundAtCapacityBoundary)
{
    // Fill / drain repeatedly so the indices cross the capacity
    // boundary many times; every value must come out exactly once, in
    // order, even though the storage wraps.
    dift::SpscRing<uint64_t> ring(64);
    uint64_t next = 0, expect = 0;
    for (int round = 0; round < 13; ++round) {
        // 61 is coprime with 64: each round straddles the boundary at
        // a different offset.
        for (int i = 0; i < 61; ++i)
            EXPECT_EQ(ring.push(next++), 0u);
        ring.publish();
        uint64_t n = ring.consume([&](const uint64_t &v) {
            EXPECT_EQ(v, expect);
            ++expect;
        });
        EXPECT_EQ(n, 61u);
    }
    EXPECT_EQ(expect, next);
    EXPECT_EQ(ring.pushed(), next);
    EXPECT_EQ(ring.consumed(), next);
}

TEST(SpscRing, BlockedProducerLosesNothing)
{
    // A ring much smaller than the stream forces continuous
    // wrap-around and producer backpressure. With a deliberately slow
    // consumer the producer must block (spin counts observable) and
    // still deliver every event exactly once.
    constexpr uint64_t kEvents = 1'500'000;
    dift::SpscRing<uint64_t> ring(256);
    uint64_t stallSpins = 0;

    std::thread consumer([&] {
        uint64_t expect = 0;
        while (expect < kEvents) {
            ring.consume([&](const uint64_t &v) {
                ASSERT_EQ(v, expect);
                ++expect;
            });
        }
    });

    for (uint64_t i = 0; i < kEvents; ++i)
        stallSpins += ring.push(i);
    ring.publish();
    consumer.join();

    EXPECT_EQ(ring.pushed(), kEvents);
    EXPECT_EQ(ring.consumed(), kEvents);
    // 1.5M events through a 256-slot ring cannot avoid backpressure
    // entirely, but don't assert on scheduling luck — just that the
    // accounting is consistent.
    EXPECT_EQ(ring.depth(), 0u);
    (void)stallSpins;
}

TEST(SpscRing, BackpressureSpinsAreCounted)
{
    // Deterministic stall: fill the ring with no consumer running,
    // then start one. The first over-capacity push must block and
    // report a nonzero spin count.
    dift::SpscRing<uint64_t> ring(64);
    for (uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(ring.push(i), 0u);

    std::thread consumer([&] {
        // Give the producer time to hit the full ring.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        uint64_t seen = 0;
        while (seen < 65)
            seen += ring.consume([](const uint64_t &) {});
    });
    uint64_t spins = ring.push(64);
    ring.publish();
    consumer.join();
    EXPECT_GT(spins, 0u);
    EXPECT_EQ(ring.consumed(), 65u);
}

TEST(DiftEvent, IsExactly24Bytes)
{
    EXPECT_EQ(sizeof(dift::Event), 24u);
}

// ----------------------------------------------------------- validation

TEST(AsyncOptions, ValidatorAcceptsDefaults)
{
    dift::AsyncTaintOptions opt;
    EXPECT_EQ(dift::validateAsyncOptions(opt), "");
}

TEST(AsyncOptions, ValidatorRejectsBadRingSizes)
{
    dift::AsyncTaintOptions opt;
    opt.ringEvents = 1000; // not a power of two
    EXPECT_NE(dift::validateAsyncOptions(opt), "");
    opt.ringEvents = 1u << 9; // below 2^10
    EXPECT_NE(dift::validateAsyncOptions(opt), "");
    opt.ringEvents = 0;
    EXPECT_NE(dift::validateAsyncOptions(opt), "");
    opt.ringEvents = 1u << 24; // top of the range is legal
    EXPECT_EQ(dift::validateAsyncOptions(opt), "");
}

TEST(AsyncOptions, ValidatorRejectsBadPublishBatch)
{
    dift::AsyncTaintOptions opt;
    opt.publishBatch = 0;
    EXPECT_NE(dift::validateAsyncOptions(opt), "");
    opt.publishBatch = opt.ringEvents; // > ring/2
    EXPECT_NE(dift::validateAsyncOptions(opt), "");
    opt.publishBatch = opt.ringEvents / 2;
    EXPECT_EQ(dift::validateAsyncOptions(opt), "");
}

// ----------------------------------------------------------- annotation

TEST(Annotate, MarksLoadsAndStores)
{
    Program program = minic::compileProgram(
        std::string("int g;"
                    "int main() { int x = g; g = x + 1; return g; }"));
    dift::AnnotateStats stats =
        dift::annotateForAsync(program, dift::AnnotateOptions{});
    EXPECT_GT(stats.checkedLoads, 0u);
    EXPECT_GT(stats.trackedStores, 0u);
    EXPECT_EQ(stats.cmpMarkers, 0u);

    uint64_t annotated = 0;
    for (const auto &fn : program.functions) {
        for (const auto &instr : fn.code) {
            if (instr.p1 & dift::kAnnChecked)
                ++annotated;
        }
    }
    EXPECT_EQ(annotated, stats.checkedLoads + stats.relaxedLoads +
                             stats.trackedStores + stats.relaxedStores);
}

TEST(Annotate, ScopedRelaxAndCmpMarkers)
{
    auto compile = [] {
        return minic::compileProgram(std::string(
            "int table[8];"
            "int lookup(int i) { return table[i]; }"
            "int check(int c) { if (c == 61) return 1; return 0; }"
            "int main() { return lookup(1) + check(2); }"));
    };

    Program plain = compile();
    dift::AnnotateOptions opt;
    opt.relaxLoadFunctions = {"lookup"};
    opt.cmpTaintAlertFunctions = {"check"};
    Program annotated = compile();
    dift::AnnotateStats stats = dift::annotateForAsync(annotated, opt);
    EXPECT_GT(stats.relaxedLoads, 0u);
    EXPECT_GT(stats.cmpMarkers, 0u);

    // Compare markers are real inserted instructions.
    auto sizeOf = [](const Program &p) {
        uint64_t n = 0;
        for (const auto &fn : p.functions)
            n += fn.code.size();
        return n;
    };
    EXPECT_EQ(sizeOf(annotated), sizeOf(plain) + stats.cmpMarkers);
}

// ------------------------------------------------------- tier (direct)

// Tier-direct tests pin the consumer placement: Thread keeps the
// ring/fence protocol under test even on single-hart hosts (where
// Auto resolves to the inline consumer), and the Inline variants
// cover the fused same-thread replay.
dift::AsyncTaintOptions
tierOptions(dift::AsyncConsumer consumer)
{
    dift::AsyncTaintOptions opt;
    opt.consumer = consumer;
    return opt;
}

class TierTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kAddr = regionBase(kDataRegion) + 0x2000;

    dift::Event
    ev(dift::EvKind kind, uint8_t a, uint8_t b, uint8_t flags,
       uint64_t addr, uint8_t size)
    {
        dift::Event e{};
        e.addr = addr;
        e.pc = 7;
        e.func = 3;
        e.kind = static_cast<uint8_t>(kind);
        e.flags = flags;
        e.a = a;
        e.b = b;
        e.size = size;
        return e;
    }

    Memory mem;
};

TEST_F(TierTest, LoadPropagatesBitmapTaintToRegister)
{
    dift::AsyncTaintTier tier(mem, Granularity::Byte,
                              tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    // Taint kAddr via the mirror hook (what a TaintMap write does).
    tier.mirrorTagWrite(tagByteAddr(kAddr, Granularity::Byte),
                        tagBitIndex(kAddr, Granularity::Byte), true);
    tier.push(ev(dift::EvKind::Load, /*dst=*/5, /*addrReg=*/6,
                 dift::kEvChecked, kAddr, 1));
    EXPECT_EQ(tier.fence(), nullptr);
    EXPECT_TRUE(tier.regTaint(5));
    EXPECT_FALSE(tier.regTaint(6));

    // Register taint flows through ALU ops and stores back to memory.
    tier.push(ev(dift::EvKind::RegWrite, /*dst=*/7, /*src=*/5, 0, 0, 0));
    tier.push(ev(dift::EvKind::Store, /*src=*/7, /*addrReg=*/6,
                 dift::kEvChecked, kAddr + 8, 1));
    EXPECT_EQ(tier.fence(), nullptr);
    EXPECT_TRUE(tier.regTaint(7));
    // The fence materialized the dirty tag word into memory.
    uint64_t byte = 0;
    ASSERT_EQ(mem.read(tagByteAddr(kAddr + 8, Granularity::Byte), 1, byte),
              MemFault::None);
    EXPECT_TRUE(bit(byte, tagBitIndex(kAddr + 8, Granularity::Byte)));
    EXPECT_EQ(tier.shutdown(), nullptr);
}

TEST_F(TierTest, ZeroIdiomPurifies)
{
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    tier.setRegTaint(9, true);
    EXPECT_TRUE(tier.regTaint(9));
    dift::Event e = ev(dift::EvKind::RegWrite, 9, 9, dift::kEvZeroIdiom,
                       0, 0);
    e.c = 9;
    tier.push(e);
    EXPECT_EQ(tier.fence(), nullptr);
    EXPECT_FALSE(tier.regTaint(9));
    EXPECT_EQ(tier.shutdown(), nullptr);
}

TEST_F(TierTest, TaintedLoadAddressViolates)
{
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    tier.setRegTaint(6, true);
    tier.push(ev(dift::EvKind::Load, 5, 6, dift::kEvChecked, kAddr, 1));
    const dift::Violation *v = tier.fence();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, dift::ViolationKind::LoadAddress);
    EXPECT_EQ(v->pc, 7);
    EXPECT_EQ(v->func, 3);
    EXPECT_STREQ(v->detail, "load through a NaT (tainted) address");
    // First violation wins; later events are discarded.
    tier.setRegTaint(8, true);
    tier.push(
        ev(dift::EvKind::BranchCheck, 8, 0, 0, /*branch target*/ 0x40, 0));
    const dift::Violation *again = tier.shutdown();
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->kind, dift::ViolationKind::LoadAddress);
}

TEST_F(TierTest, BranchCheckViolates)
{
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    tier.setRegTaint(8, true);
    tier.push(ev(dift::EvKind::BranchCheck, 8, 0, 0, 0x1234, 0));
    const dift::Violation *v = tier.shutdown();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, dift::ViolationKind::ControlFlow);
    EXPECT_EQ(v->addr, 0x1234u);
    EXPECT_STREQ(v->detail,
                 "NaT (tainted) value moved into a branch register");
}

TEST_F(TierTest, SpillFillCarriesTaintOutOfBand)
{
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    tier.setRegTaint(4, true);
    // st8.spill of a tainted register then ld8.fill restores the
    // taint without touching the tag bitmap (UNAT semantics).
    tier.push(ev(dift::EvKind::Store, 4, 12, dift::kEvSpill, kAddr, 8));
    tier.push(ev(dift::EvKind::RegWrite, 4, 0, 0, 0, 0)); // clobber r4
    tier.push(ev(dift::EvKind::Load, 4, 12, dift::kEvFill, kAddr, 8));
    EXPECT_EQ(tier.fence(), nullptr);
    EXPECT_TRUE(tier.regTaint(4));
    // The bitmap itself stays clean: spills are out-of-band.
    uint64_t tagByte = 0;
    ASSERT_EQ(mem.read(tagByteAddr(kAddr, Granularity::Byte), 1, tagByte),
              MemFault::None);
    EXPECT_FALSE(bit(tagByte, tagBitIndex(kAddr, Granularity::Byte)));
    EXPECT_EQ(tier.shutdown(), nullptr);
}

TEST_F(TierTest, StatsExposeRingAndFenceCounters)
{
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    tier.start();
    for (int i = 0; i < 100; ++i)
        tier.push(ev(dift::EvKind::RegWrite, 1, 0, 0, 0, 0));
    tier.fence();
    tier.shutdown();
    StatSet stats;
    tier.statInto(stats);
    EXPECT_EQ(stats.get("dift.events"), 100u);
    EXPECT_GE(stats.get("dift.fences"), 1u);
    EXPECT_EQ(stats.gauge("dift.ring.capacity"),
              int64_t(dift::AsyncTaintOptions{}.ringEvents));
}

TEST_F(TierTest, InlineConsumerReplaysWithoutThread)
{
    // Inline placement: push() replays synchronously in the calling
    // thread, fences never wait, and the verdict machinery behaves
    // exactly as in the threaded mode.
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Inline));
    tier.start();
    EXPECT_TRUE(tier.inlineConsumer());
    tier.mirrorTagWrite(tagByteAddr(kAddr, Granularity::Byte),
                        tagBitIndex(kAddr, Granularity::Byte), true);
    EXPECT_FALSE(tier.push(
        ev(dift::EvKind::Load, 5, 6, dift::kEvChecked, kAddr, 1)));
    // No fence needed: the shadow is already caught up.
    EXPECT_TRUE(tier.regTaint(5));
    // A violation surfaces on the very push that replays it.
    tier.setRegTaint(6, true);
    EXPECT_TRUE(tier.push(
        ev(dift::EvKind::Load, 5, 6, dift::kEvChecked, kAddr, 1)));
    const dift::Violation *v = tier.shutdown();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, dift::ViolationKind::LoadAddress);
    EXPECT_STREQ(v->detail, "load through a NaT (tainted) address");

    StatSet stats;
    tier.statInto(stats);
    EXPECT_EQ(stats.get("dift.events"), 2u);
    EXPECT_EQ(stats.gauge("dift.consumer.inline"), 1);
}

TEST_F(TierTest, FusedInlineEntryPointsMatchEventReplay)
{
    // The fused per-kind entry points must apply the same state
    // transitions as pushing the equivalent Event.
    dift::AsyncTaintTier tier(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Inline));
    tier.start();
    tier.mirrorTagWrite(tagByteAddr(kAddr, Granularity::Byte),
                        tagBitIndex(kAddr, Granularity::Byte), true);
    EXPECT_FALSE(tier.inlineLoad(5, 6, dift::kEvChecked, kAddr, 1, 7, 3));
    EXPECT_TRUE(tier.regTaint(5));
    tier.inlineRegWrite(7, 5, 0, /*zeroIdiom=*/false);
    EXPECT_TRUE(tier.regTaint(7));
    tier.inlineRegWrite(7, 7, 7, /*zeroIdiom=*/true);
    EXPECT_FALSE(tier.regTaint(7));
    EXPECT_FALSE(
        tier.inlineStore(5, 6, dift::kEvChecked, kAddr + 8, 1, 8, 3));
    // Plain store of the tainted register: StoreValue verdict with the
    // event's pc/func threaded through.
    EXPECT_TRUE(tier.inlineStore(5, 6, 0, kAddr + 16, 1, 9, 3));
    const dift::Violation *v = tier.shutdown();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, dift::ViolationKind::StoreValue);
    EXPECT_EQ(v->pc, 9);
    EXPECT_EQ(v->func, 3);
    EXPECT_EQ(tier.eventsPushed(), 5u);
}

TEST(AsyncConsumerPlacement, ForcedModesAndAutoResolution)
{
    Memory mem;
    dift::AsyncTaintTier threaded(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Thread));
    EXPECT_FALSE(threaded.inlineConsumer());
    dift::AsyncTaintTier inlined(
        mem, Granularity::Byte, tierOptions(dift::AsyncConsumer::Inline));
    EXPECT_TRUE(inlined.inlineConsumer());
    dift::AsyncTaintTier automatic(mem, Granularity::Byte,
                                   tierOptions(dift::AsyncConsumer::Auto));
    EXPECT_EQ(automatic.inlineConsumer(),
              std::thread::hardware_concurrency() <= 1);
}

// ------------------------------------------------------ end-to-end runs

SessionOptions
asyncOptions(Granularity granularity = Granularity::Byte)
{
    SessionOptions options = shiftOptions(granularity);
    options.async.enabled = true;
    return options;
}

RunResult
runAsyncWithFile(const std::string &source, const std::string &fileText,
                 SessionOptions options)
{
    Session session(source, std::move(options));
    session.os().addFile("input.txt", fileText);
    return session.run();
}

class AsyncGranularityTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(ByteAndWord, AsyncGranularityTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word),
                         [](const auto &info) {
                             return info.param == Granularity::Byte
                                        ? "byte"
                                        : "word";
                         });

TEST_P(AsyncGranularityTest, FileInputIsTainted)
{
    RunResult r = runAsyncWithFile(
        "int main() {"
        "  char buf[64];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 64);"
        "  return __mem_tainted(buf) + 2 * (n == 5);"
        "}",
        "hello", asyncOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 3);
    EXPECT_GT(r.stats.get("dift.events"), 0u);
    EXPECT_GT(r.stats.get("dift.fences"), 0u);
}

TEST_P(AsyncGranularityTest, TaintFlowsThroughRegisters)
{
    // Under the async tier the engine's NaT bits are only conservative
    // "maybe tainted" summaries; __arg_tainted consults the consumer's
    // shadow register file at the fence, never the maybe bits.
    RunResult r = runAsyncWithFile(
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int x = buf[0] + 1;"
        "  int y = x * 3;"
        "  return __arg_tainted(y);"
        "}",
        "A", asyncOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 1);
}

TEST_P(AsyncGranularityTest, TaintFlowsBackToMemory)
{
    RunResult r = runAsyncWithFile(
        "char out[8];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  out[1] = 'x';"
        "  out[0] = buf[0];"
        "  return __mem_tainted(&out[0]) * 10 + __mem_tainted(&out[1]);"
        "}",
        "A", asyncOptions(GetParam()));
    if (GetParam() == Granularity::Byte)
        EXPECT_EXIT_CODE(r, 10);
    else
        EXPECT_EXIT_CODE(r, 11);
}

TEST(AsyncSession, TaintedPointerDereferenceIsL1)
{
    RunResult r = runAsyncWithFile(
        "int table[4];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  return table[buf[0]];"
        "}",
        "\x02", asyncOptions());
    EXPECT_POLICY_KILL(r, "L1");
    EXPECT_GT(r.stats.get("dift.violations"), 0u);
    ASSERT_NE(r.stats.histogram("dift.lag.detect.ns"), nullptr);
}

TEST(AsyncSession, CleanRunHasNoViolations)
{
    Session session("int main() { return 42; }", asyncOptions());
    RunResult r = session.run();
    EXPECT_EXIT_CODE(r, 42);
    EXPECT_EQ(r.stats.get("dift.violations"), 0u);
}

TEST(AsyncSession, InlineAndThreadedConsumersAgree)
{
    // Same program, both consumer placements: identical exit code and
    // event count (the engine-side filter decisions do not depend on
    // where the consumer runs, only load maybe-outs do — and those
    // converge on this taint path).
    const char *source =
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int x = buf[0] + 1;"
        "  return __arg_tainted(x);"
        "}";
    SessionOptions threaded = asyncOptions();
    threaded.async.consumer = dift::AsyncConsumer::Thread;
    RunResult rt = runAsyncWithFile(source, "A", std::move(threaded));
    SessionOptions inlined = asyncOptions();
    inlined.async.consumer = dift::AsyncConsumer::Inline;
    RunResult ri = runAsyncWithFile(source, "A", std::move(inlined));
    EXPECT_EXIT_CODE(rt, 1);
    EXPECT_EXIT_CODE(ri, 1);
    EXPECT_EQ(rt.stats.gauge("dift.consumer.inline"), 0);
    EXPECT_EQ(ri.stats.gauge("dift.consumer.inline"), 1);
    EXPECT_GT(ri.stats.get("dift.events"), 0u);
}

TEST(AsyncSession, TinyRingSurvivesBackpressure)
{
    // A 1K ring against a compute loop forces ring wrap-around and
    // (usually) producer stalls inside a real run. Thread placement is
    // pinned: the ring protocol must stay covered on single-hart
    // hosts too, where Auto would pick the inline consumer.
    SessionOptions options = asyncOptions();
    options.async.ringEvents = 1u << 10;
    options.async.publishBatch = 8;
    options.async.consumer = dift::AsyncConsumer::Thread;
    RunResult r = runAsyncWithFile(
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int acc = buf[0];"
        "  for (int i = 0; i < 20000; i = i + 1) acc = acc + i;"
        "  return __arg_tainted(acc);"
        "}",
        "Z", std::move(options));
    EXPECT_EXIT_CODE(r, 1);
    EXPECT_GT(r.stats.get("dift.events"), 20000u);
}

} // namespace
} // namespace shift
