/**
 * @file
 * Execution-engine equivalence and predecode contract tests.
 *
 * The predecoded engine (label stripping, link-time branch/callee
 * resolution, precomputed stall metadata, the page-translation cache
 * underneath) must be observationally identical to the legacy
 * per-step resolver: same simulated cycles, same dynamic instruction
 * counts, same alerts (including architectural pcs), same exit codes.
 * This suite runs the full attack scenario set, SPEC kernels, the
 * httpd workload and randomized property programs through both
 * engines and compares RunResults field by field; it also pins the
 * construction-time rejection of unresolved labels and the builtin
 * pc-advance semantics.
 */

#include <gtest/gtest.h>

#include <random>

#include "runtime/session.hh"
#include "session_helpers.hh"
#include "workloads/attacks.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace shift
{
namespace
{

using workloads::attackScenarios;
using workloads::AttackRun;
using workloads::HttpdConfig;
using workloads::runAttackScenario;
using workloads::runHttpd;
using workloads::runSpecKernel;
using workloads::specKernels;
using workloads::SpecRunConfig;

/** Field-by-field RunResult comparison (cycles, alerts, pcs, stats). */
void
expectSameResult(const RunResult &legacy, const RunResult &pre,
                 const std::string &what)
{
    EXPECT_EQ(legacy.exited, pre.exited) << what;
    EXPECT_EQ(legacy.exitCode, pre.exitCode) << what;
    EXPECT_EQ(legacy.killedByPolicy, pre.killedByPolicy) << what;
    EXPECT_EQ(legacy.instructions, pre.instructions) << what;
    EXPECT_EQ(legacy.cycles, pre.cycles) << what;

    EXPECT_EQ(legacy.fault.kind, pre.fault.kind) << what;
    EXPECT_EQ(legacy.fault.context, pre.fault.context) << what;
    EXPECT_EQ(legacy.fault.function, pre.fault.function) << what;
    EXPECT_EQ(legacy.fault.pc, pre.fault.pc) << what;
    EXPECT_EQ(legacy.fault.detail, pre.fault.detail) << what;

    ASSERT_EQ(legacy.alerts.size(), pre.alerts.size()) << what;
    for (size_t i = 0; i < legacy.alerts.size(); ++i) {
        EXPECT_EQ(legacy.alerts[i].policy, pre.alerts[i].policy) << what;
        EXPECT_EQ(legacy.alerts[i].message, pre.alerts[i].message)
            << what;
        EXPECT_EQ(legacy.alerts[i].function, pre.alerts[i].function)
            << what;
        EXPECT_EQ(legacy.alerts[i].pc, pre.alerts[i].pc) << what;
    }
}

TEST(EngineEquivalence, FullAttackSuite)
{
    for (const auto &scenario : attackScenarios()) {
        for (bool exploit : {false, true}) {
            AttackRun legacy = runAttackScenario(
                scenario, exploit, Granularity::Byte,
                ExecEngine::Legacy);
            AttackRun pre = runAttackScenario(
                scenario, exploit, Granularity::Byte,
                ExecEngine::Predecoded);
            std::string what = scenario.name +
                               (exploit ? "/exploit" : "/benign");
            expectSameResult(legacy.result, pre.result, what);
            EXPECT_EQ(legacy.detected, pre.detected) << what;
            EXPECT_EQ(legacy.falsePositive, pre.falsePositive) << what;
        }
    }
}

TEST(EngineEquivalence, SpecKernelsShiftByteUnsafe)
{
    for (const auto &kernel : specKernels()) {
        SpecRunConfig config;
        config.mode = TrackingMode::Shift;
        config.granularity = Granularity::Byte;
        config.taintInput = true;

        config.engine = ExecEngine::Legacy;
        auto legacy = runSpecKernel(kernel, config);
        config.engine = ExecEngine::Predecoded;
        auto pre = runSpecKernel(kernel, config);
        expectSameResult(legacy.result, pre.result, kernel.name);
    }
}

TEST(EngineEquivalence, SpecKernelUninstrumented)
{
    SpecRunConfig config;
    config.mode = TrackingMode::None;

    config.engine = ExecEngine::Legacy;
    auto legacy = runSpecKernel(specKernels().front(), config);
    config.engine = ExecEngine::Predecoded;
    auto pre = runSpecKernel(specKernels().front(), config);
    expectSameResult(legacy.result, pre.result, "spec/none");
}

TEST(EngineEquivalence, Httpd)
{
    HttpdConfig config;
    config.mode = TrackingMode::Shift;
    config.fileSize = 512;
    config.requests = 5;

    config.engine = ExecEngine::Legacy;
    auto legacy = runHttpd(config);
    config.engine = ExecEngine::Predecoded;
    auto pre = runHttpd(config);
    expectSameResult(legacy.result, pre.result, "httpd");
    EXPECT_EQ(legacy.requestsServed, pre.requestsServed);
    EXPECT_TRUE(pre.responsesOk);
}

/**
 * Property-style equivalence: random programs over tainted file input
 * (the transparency-test recipe) must produce identical RunResults
 * under both engines, in every tracking mode.
 */
std::string
randomTaintedProgram(uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::string body = "  char buf[16];\n"
                       "  int fd = open(\"input.dat\", 0);\n"
                       "  read(fd, buf, 8);\n"
                       "  close(fd);\n";
    for (int i = 0; i < 8; ++i)
        body += std::string("  long ") + char('a' + i) + " = buf[" +
                std::to_string(i) + "];\n";
    static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
    int statements = 8 + int(rng() % 8);
    for (int s = 0; s < statements; ++s) {
        char dst = char('a' + rng() % 8);
        char s1 = char('a' + rng() % 8);
        char s2 = char('a' + rng() % 8);
        const char *op = ops[rng() % 6];
        body += std::string("  ") + dst + " = (" + s1 + " " + op + " " +
                s2 + ") + " + std::to_string(int(rng() % 50)) + ";\n";
    }
    return "int main() {\n" + body +
           "  return (a ^ b ^ c ^ d ^ e ^ f ^ g ^ h) & 127;\n}\n";
}

RunResult
runEngine(const std::string &source, TrackingMode mode,
          ExecEngine engine)
{
    SessionOptions options;
    options.mode = mode;
    options.policy.taintFile = true;
    options.engine = engine;
    Session session(source, options);
    std::string input;
    for (int i = 0; i < 8; ++i)
        input.push_back(char(10 + i));
    session.os().addFile("input.dat", input);
    return session.run();
}

TEST(EngineEquivalence, RandomTaintedPrograms)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        std::string source = randomTaintedProgram(seed);
        for (TrackingMode mode :
             {TrackingMode::None, TrackingMode::Shift,
              TrackingMode::SoftwareDift}) {
            RunResult legacy =
                runEngine(source, mode, ExecEngine::Legacy);
            RunResult pre =
                runEngine(source, mode, ExecEngine::Predecoded);
            expectSameResult(legacy, pre,
                             "seed " + std::to_string(seed));
        }
    }
}

// ---------------------------------------------------------------------
// Predecode contract: unresolved labels are a construction-time
// diagnostic, not a runtime assertion.
// ---------------------------------------------------------------------

Program
programWithDanglingBranch()
{
    Program program;
    Function fn;
    fn.name = "main";
    fn.nextLabel = 8;
    Instr br;
    br.op = Opcode::Br;
    br.useImm = true;
    br.imm = 5; // no Label 5 exists
    fn.code.push_back(br);
    Instr ret;
    ret.op = Opcode::BrRet;
    fn.code.push_back(ret);
    program.addFunction(std::move(fn));
    return program;
}

TEST(PredecodeContract, UnresolvedLabelRejectedAtConstruction)
{
    Program program = programWithDanglingBranch();
    Machine machine(program, {}, ExecEngine::Predecoded);
    RunResult result = machine.run(1000);
    EXPECT_FALSE(result.exited);
    ASSERT_EQ(result.fault.kind, FaultKind::BadProgram);
    EXPECT_NE(result.fault.detail.find("main"), std::string::npos)
        << result.fault.detail;
    EXPECT_NE(result.fault.detail.find("L5"), std::string::npos)
        << result.fault.detail;
    // The machine never executed anything.
    EXPECT_EQ(result.instructions, 0u);
}

TEST(PredecodeContract, UnresolvedLabelFaultsAtRunTimeUnderLegacy)
{
    Program program = programWithDanglingBranch();
    Machine machine(program, {}, ExecEngine::Legacy);
    RunResult result = machine.run(1000);
    EXPECT_FALSE(result.exited);
    ASSERT_EQ(result.fault.kind, FaultKind::BadProgram);
    EXPECT_NE(result.fault.detail.find("main"), std::string::npos)
        << result.fault.detail;
}

// ---------------------------------------------------------------------
// Builtin pc semantics: a builtin that transfers control into a user
// function (callFunction) must not have the call site's ++pc applied
// to the callee, even when the callee's entry pc coincides with the
// call-site pc.
// ---------------------------------------------------------------------

Program
builtinCallbackProgram()
{
    Program program;

    // main: [0] br.call invoke_cb  [1] mov r9 = 77  [2] ret
    // The call sits at pc 0 so the callee's entry pc equals the
    // call-site pc — the exact aliasing the pc-only check mistook for
    // "builtin did not move pc".
    Function mainFn;
    mainFn.name = "main";
    Instr call;
    call.op = Opcode::BrCall;
    call.callee = "invoke_cb";
    mainFn.code.push_back(call);
    mainFn.code.push_back(makeMovi(9, 77));
    Instr ret;
    ret.op = Opcode::BrRet;
    mainFn.code.push_back(ret);
    program.addFunction(std::move(mainFn));

    // cb: [0] mov r8 = 42  [1] ret — skipping [0] is the regression.
    Function cb;
    cb.name = "cb";
    cb.code.push_back(makeMovi(reg::rv, 42));
    cb.code.push_back(ret);
    program.addFunction(std::move(cb));
    return program;
}

class BuiltinPcTest : public ::testing::TestWithParam<ExecEngine>
{
};

INSTANTIATE_TEST_SUITE_P(Engines, BuiltinPcTest,
                         ::testing::Values(ExecEngine::Predecoded,
                                           ExecEngine::Legacy));

TEST_P(BuiltinPcTest, CallFrameFromBuiltinIsNotDoubleAdvanced)
{
    Program program = builtinCallbackProgram();
    Machine machine(program, {}, GetParam());
    machine.registerBuiltin("invoke_cb", [](Machine &m) {
        m.callFunction(1); // enter cb; frame returns after the call
    });
    RunResult result = machine.run(1000);
    ASSERT_TRUE(result.exited) << result.fault.detail;
    // cb's first instruction must have run (rv = 42), and execution
    // must have resumed at main[1] afterwards (r9 = 77).
    EXPECT_EQ(result.exitCode, 42);
    EXPECT_EQ(machine.gprVal(9), 77u);
}

TEST_P(BuiltinPcTest, PlainBuiltinAdvancesExactlyOnce)
{
    Program program = builtinCallbackProgram();
    Machine machine(program, {}, GetParam());
    machine.registerBuiltin("invoke_cb", [](Machine &m) {
        m.setRetval(7); // no control transfer
    });
    RunResult result = machine.run(1000);
    ASSERT_TRUE(result.exited) << result.fault.detail;
    EXPECT_EQ(result.exitCode, 7);
    EXPECT_EQ(machine.gprVal(9), 77u);
}

} // namespace
} // namespace shift
