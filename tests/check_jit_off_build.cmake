# Portable-build leg: configure the tree with -DSHIFT_ENABLE_JIT=OFF
# into a scratch directory, build the JIT test binary against it, and
# run it. Machine::jitAvailable() must report false there — every
# behavioural test skips and the no-op tests pass — and the build
# itself must succeed, so a stray use of the backend outside a
# SHIFT_JIT_BACKEND guard (in src/jit, the Machine dispatch, or the
# session plumbing) breaks this leg rather than some user's portable
# host. Invoked by ctest with -DREPO_ROOT=<src> -DSCRATCH=<dir>.

if(NOT DEFINED REPO_ROOT OR NOT DEFINED SCRATCH)
    message(FATAL_ERROR "pass -DREPO_ROOT=... and -DSCRATCH=...")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -S ${REPO_ROOT} -B ${SCRATCH}
            -DSHIFT_ENABLE_JIT=OFF -DCMAKE_BUILD_TYPE=Release
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "configure with -DSHIFT_ENABLE_JIT=OFF failed:\n"
        "${out}\n${err}")
endif()

include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
    set(ncpu 2)
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${SCRATCH} --target test_jit
            -j ${ncpu}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "build with -DSHIFT_ENABLE_JIT=OFF failed:\n"
        "${out}\n${err}")
endif()

execute_process(
    COMMAND ${SCRATCH}/tests/test_jit
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "test_jit failed under -DSHIFT_ENABLE_JIT=OFF:\n"
        "${out}\n${err}")
endif()
message(STATUS "JIT-off build leg: compiled and passed (backend absent)")
