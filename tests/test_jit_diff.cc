/**
 * @file
 * JIT tier differential suite: SPEC kernels (byte and word
 * granularity, with and without the taint-clean fast tier underneath),
 * the httpd workload, and all attack scenarios, each run jit-off vs
 * jit-on. Verdicts, taint bitmaps, memory hashes and every counter
 * must be identical (jit_test_util.hh's exact-equality harness).
 *
 * The unit tests for the tier's machinery (deopt protocol, code-cache
 * budget, fleet sharing) live in test_jit.cc.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "jit_test_util.hh"
#include "session_helpers.hh"
#include "workloads/attacks.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace shift
{
namespace
{

using jittest::captureRun;
using jittest::DiffRun;
using jittest::expectIdentical;
using jittest::kEager;
using workloads::attackScenarios;
using workloads::AttackRun;
using workloads::httpdSessionOptions;
using workloads::kHttpdRequest;
using workloads::kHttpdSource;
using workloads::provisionHttpdOs;
using workloads::runAttackScenario;
using workloads::SpecKernel;
using workloads::specKernels;

// ---------------------------------------------------------------------
// Differential: SPEC kernels, with and without the fast tier under
// the compiled code (the dual-version streams both get compiled).
// Every differential runs across the tier matrix — {sync, background}
// compilation × {whole-function, lazy per-block} granularity — since
// all four placements promise the same bit-identical simulation; only
// where the host compile work happens may differ.
// ---------------------------------------------------------------------

/** One point of the sync/bg × whole/lazy compile-placement matrix. */
struct JitTier
{
    bool background;
    bool lazy;
};

constexpr JitTier kJitTiers[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

std::string
tierName(const JitTier &tier)
{
    return std::string(tier.background ? "Bg" : "Sync") +
           (tier.lazy ? "Lazy" : "Whole");
}

class JitDiffSpecTest
    : public ::testing::TestWithParam<std::tuple<Granularity, JitTier>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Granularities, JitDiffSpecTest,
    ::testing::Combine(::testing::Values(Granularity::Byte,
                                         Granularity::Word),
                       ::testing::ValuesIn(kJitTiers)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) == Granularity::Byte
                               ? "byte"
                               : "word";
        return name + tierName(std::get<1>(info.param));
    });

DiffRun
runKernel(const SpecKernel &kernel, Granularity granularity,
          bool fastPath, bool jitOn, dift::AsyncTaintOptions async = {},
          JitTier tier = {false, false})
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.granularity = granularity;
    options.policy.taintFile = true;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.fastPath = fastPath;
    options.async = async;
    options.jit = jitOn;
    options.jitThreshold = kEager;
    options.jitBackground = tier.background;
    options.jitLazy = tier.lazy;
    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    return captureRun(session);
}

TEST_P(JitDiffSpecTest, AllKernelsIdentical)
{
    SKIP_WITHOUT_JIT();
    const auto &[granularity, tier] = GetParam();
    for (const SpecKernel &kernel : specKernels()) {
        for (bool fastPath : {false, true}) {
            DiffRun off = runKernel(kernel, granularity, fastPath, false);
            DiffRun on =
                runKernel(kernel, granularity, fastPath, true, {}, tier);
            std::string what = std::string(kernel.name) +
                               (fastPath ? "+fastpath" : "") + "+" +
                               tierName(tier);
            EXPECT_TRUE(off.result.exited) << what;
            expectIdentical(off, on, what);
            // Background compiles race the (short) kernel run; on a
            // loaded host nothing may get installed before exit, so
            // only the synchronous placements guarantee entry.
            if (!tier.background)
                EXPECT_GT(on.jitEntered, 0u) << what;
        }
    }
}

class JitDiffHttpdTest : public ::testing::TestWithParam<JitTier>
{
};

INSTANTIATE_TEST_SUITE_P(Tiers, JitDiffHttpdTest,
                         ::testing::ValuesIn(kJitTiers),
                         [](const auto &info) {
                             return tierName(info.param);
                         });

TEST_P(JitDiffHttpdTest, ResponsesAndMemoryIdentical)
{
    SKIP_WITHOUT_JIT();
    const JitTier tier = GetParam();
    DiffRun runs[2];
    for (bool jitOn : {false, true}) {
        SessionOptions options = httpdSessionOptions(
            TrackingMode::Shift, Granularity::Byte, {},
            ExecEngine::Predecoded);
        options.fastPath = true;
        options.jit = jitOn;
        options.jitThreshold = kEager;
        options.jitBackground = jitOn && tier.background;
        options.jitLazy = jitOn && tier.lazy;
        Session session(kHttpdSource, options);
        provisionHttpdOs(session.os(), 512);
        for (int i = 0; i < 5; ++i)
            session.os().queueConnection(kHttpdRequest);
        runs[jitOn] = captureRun(session);
    }
    EXPECT_TRUE(runs[0].result.exited);
    EXPECT_EQ(runs[0].responses.size(), 5u);
    expectIdentical(runs[0], runs[1], "httpd+" + tierName(tier));
    if (!tier.background)
        EXPECT_GT(runs[1].jitEntered, 0u)
            << "serving must actually run compiled code";
}

// ---------------------------------------------------------------------
// Differential: the decoupled async taint tier under the JIT. The
// compiled code must bail at exactly the ops whose events the
// interpreter would emit, so the consumer sees an identical event
// stream (dift.events is compared) and the simulation retires the
// same instructions and cycles. Wall-clock-dependent counters (fence
// and ring spin totals) are excluded — they differ between two
// identical runs under the threaded consumer.
// ---------------------------------------------------------------------

class JitAsyncDiffSpecTest
    : public ::testing::TestWithParam<
          std::tuple<Granularity, dift::AsyncConsumer, JitTier>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Modes, JitAsyncDiffSpecTest,
    ::testing::Combine(::testing::Values(Granularity::Byte,
                                         Granularity::Word),
                       ::testing::Values(dift::AsyncConsumer::Thread,
                                         dift::AsyncConsumer::Inline),
                       ::testing::ValuesIn(kJitTiers)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) == Granularity::Byte
                               ? "byte"
                               : "word";
        name += std::get<1>(info.param) == dift::AsyncConsumer::Thread
                    ? "Thread"
                    : "Inline";
        return name + tierName(std::get<2>(info.param));
    });

TEST_P(JitAsyncDiffSpecTest, AllKernelsIdentical)
{
    SKIP_WITHOUT_JIT();
    dift::AsyncTaintOptions async;
    async.enabled = true;
    async.consumer = std::get<1>(GetParam());
    const Granularity granularity = std::get<0>(GetParam());
    const JitTier tier = std::get<2>(GetParam());
    for (const SpecKernel &kernel : specKernels()) {
        DiffRun off = runKernel(kernel, granularity, false, false, async);
        DiffRun on =
            runKernel(kernel, granularity, false, true, async, tier);
        std::string what = std::string(kernel.name) + "+async+" +
                           tierName(tier);
        EXPECT_TRUE(off.result.exited) << what;
        expectIdentical(off, on, what, /*dropHostTiming=*/true);
        if (!tier.background)
            EXPECT_GT(on.jitEntered, 0u) << what;
    }
}

// Attack verdicts under async + JIT. The inline consumer replays
// synchronously inside every push, so detection points are
// deterministic and the exploit/benign runs must match the jit-off
// arm exactly; the threaded consumer's kill point depends on when
// the engine samples the violation flag, so only the verdict and
// policy are asserted there.
class JitAsyncDiffAttackTest
    : public ::testing::TestWithParam<dift::AsyncConsumer>
{
};

INSTANTIATE_TEST_SUITE_P(Consumers, JitAsyncDiffAttackTest,
                         ::testing::Values(dift::AsyncConsumer::Thread,
                                           dift::AsyncConsumer::Inline),
                         [](const auto &info) {
                             return info.param ==
                                            dift::AsyncConsumer::Thread
                                        ? "Thread"
                                        : "Inline";
                         });

TEST_P(JitAsyncDiffAttackTest, AllScenariosSameVerdicts)
{
    SKIP_WITHOUT_JIT();
    dift::AsyncTaintOptions async;
    async.enabled = true;
    async.consumer = GetParam();
    const bool deterministic = GetParam() == dift::AsyncConsumer::Inline;
    for (const auto &scenario : attackScenarios()) {
        AttackRun exploitOff = runAttackScenario(
            scenario, true, Granularity::Byte, ExecEngine::Predecoded,
            {}, false, async);
        AttackRun exploitOn = runAttackScenario(
            scenario, true, Granularity::Byte, ExecEngine::Predecoded,
            {}, false, async, true, kEager);
        EXPECT_TRUE(exploitOff.detected) << scenario.name;
        EXPECT_TRUE(exploitOn.detected)
            << scenario.name << ": the JIT lost an async detection";
        ASSERT_FALSE(exploitOn.result.alerts.empty()) << scenario.name;
        EXPECT_EQ(exploitOn.result.alerts.back().policy,
                  scenario.expectedPolicy)
            << scenario.name;
        if (deterministic) {
            EXPECT_EQ(exploitOff.result.instructions,
                      exploitOn.result.instructions)
                << scenario.name;
            EXPECT_EQ(exploitOff.result.cycles,
                      exploitOn.result.cycles)
                << scenario.name;
        }

        AttackRun benignOff = runAttackScenario(
            scenario, false, Granularity::Byte, ExecEngine::Predecoded,
            {}, false, async);
        AttackRun benignOn = runAttackScenario(
            scenario, false, Granularity::Byte, ExecEngine::Predecoded,
            {}, false, async, true, kEager);
        EXPECT_FALSE(benignOff.falsePositive) << scenario.name;
        EXPECT_FALSE(benignOn.falsePositive)
            << scenario.name
            << ": the JIT introduced an async false positive";
        EXPECT_EQ(benignOff.result.exitCode, benignOn.result.exitCode)
            << scenario.name;
        EXPECT_EQ(benignOff.result.instructions,
                  benignOn.result.instructions)
            << scenario.name;
    }
}

class JitDiffAttackTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, JitDiffAttackTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word));

TEST_P(JitDiffAttackTest, AllScenariosSameVerdicts)
{
    SKIP_WITHOUT_JIT();
    for (const auto &scenario : attackScenarios()) {
        AttackRun exploitOff = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded, {},
            true);
        AttackRun exploitOn = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded, {},
            true, {}, true, kEager);
        EXPECT_TRUE(exploitOff.detected) << scenario.name;
        EXPECT_TRUE(exploitOn.detected)
            << scenario.name << ": the JIT lost a detection";
        ASSERT_FALSE(exploitOn.result.alerts.empty()) << scenario.name;
        EXPECT_EQ(exploitOn.result.alerts.back().policy,
                  scenario.expectedPolicy)
            << scenario.name;
        EXPECT_EQ(exploitOff.result.instructions,
                  exploitOn.result.instructions)
            << scenario.name;
        EXPECT_EQ(exploitOff.result.cycles, exploitOn.result.cycles)
            << scenario.name;

        AttackRun benignOff = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded, {},
            true);
        AttackRun benignOn = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded, {},
            true, {}, true, kEager);
        EXPECT_FALSE(benignOff.falsePositive) << scenario.name;
        EXPECT_FALSE(benignOn.falsePositive)
            << scenario.name << ": the JIT introduced a false positive";
        EXPECT_EQ(benignOff.result.exitCode, benignOn.result.exitCode)
            << scenario.name;
        EXPECT_EQ(benignOff.result.instructions,
                  benignOn.result.instructions)
            << scenario.name;
    }
}

} // namespace
} // namespace shift
