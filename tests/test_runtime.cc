/**
 * @file
 * Runtime tests: the native built-ins' taint summaries (the paper's
 * wrap functions), the high-level policy sinks H3/H4/H5 at their
 * boundaries, alert actions (kill vs log), and Session plumbing.
 */

#include <gtest/gtest.h>

#include "session_helpers.hh"

namespace shift
{
namespace
{

using testutil::shiftOptions;

/** Run with network taint and the given policy tweaks. */
RunResult
runNet(const std::string &source, const std::string &request,
       std::function<void(PolicyConfig &)> tweak = {},
       std::string *stdoutText = nullptr)
{
    SessionOptions options = shiftOptions();
    if (tweak)
        tweak(options.policy);
    Session session(source, options);
    session.os().queueConnection(request);
    RunResult r = session.run();
    if (stdoutText)
        *stdoutText = session.os().stdoutText();
    return r;
}

TEST(RuntimeH4, SystemWithTaintedMetachars)
{
    const char *src =
        "char req[128]; char cmd[256];"
        "int main() {"
        "  int conn = accept();"
        "  int n = recv(conn, req, 127);"
        "  req[n] = 0;"
        "  strcpy(cmd, \"convert \");"
        "  strcat(cmd, req);"
        "  if (system(cmd) < 0) return 1;"
        "  return 0;"
        "}";
    RunResult benign = runNet(src, "photo.png",
                              [](PolicyConfig &p) { p.h4 = true; });
    EXPECT_TRUE(benign.exited);
    EXPECT_TRUE(benign.alerts.empty());

    RunResult exploit = runNet(src, "x.png; rm -rf /",
                               [](PolicyConfig &p) { p.h4 = true; });
    EXPECT_POLICY_KILL(exploit, "H4");

    // Policy off: the injection sails through (the paper's point that
    // policy lives in configuration, not in the mechanism).
    RunResult off = runNet(src, "x.png; rm -rf /");
    EXPECT_TRUE(off.exited);
    EXPECT_TRUE(off.alerts.empty());
}

TEST(RuntimeH5, HtmlWriteBoundary)
{
    const char *src =
        "char req[256]; char page[512];"
        "int main() {"
        "  int conn = accept();"
        "  int n = recv(conn, req, 255);"
        "  req[n] = 0;"
        "  sprintf(page, \"<html>%s</html>\", req);"
        "  html_write(page);"
        "  return 0;"
        "}";
    RunResult exploit = runNet(
        src, "<script>steal()</script>",
        [](PolicyConfig &p) { p.h5 = true; });
    EXPECT_POLICY_KILL(exploit, "H5");

    std::string out;
    RunResult benign = runNet(src, "hello world",
                              [](PolicyConfig &p) { p.h5 = true; },
                              &out);
    EXPECT_TRUE(benign.exited);
    EXPECT_EQ(out, "<html>hello world</html>");
}

TEST(RuntimeActions, LogActionRecordsAndContinues)
{
    const char *src =
        "char req[128]; char q[256];"
        "int main() {"
        "  int conn = accept();"
        "  int n = recv(conn, req, 127);"
        "  req[n] = 0;"
        "  strcpy(q, \"SELECT x WHERE id='\");"
        "  strcat(q, req);"
        "  strcat(q, \"'\");"
        "  sql_exec(q);"
        "  return 42;"
        "}";
    RunResult r = runNet(src, "1' OR '1'='1", [](PolicyConfig &p) {
        p.h3 = true;
        p.alertKills = false; // log action
    });
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 42);
    EXPECT_FALSE(r.killedByPolicy);
    ASSERT_EQ(r.alerts.size(), 1u);
    EXPECT_EQ(r.alerts[0].policy, "H3");
}

TEST(RuntimeActions, LowLevelAlertsAlwaysTerminate)
{
    // A NaT-consumption fault cannot be resumed: L alerts terminate
    // even under action = log (the instruction cannot complete).
    SessionOptions options = shiftOptions();
    options.policy.alertKills = false;
    Session session(
        "int t[8];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 8);"
        "  return t[buf[0]];"
        "}",
        options);
    session.os().addFile("f", "\x03");
    RunResult r = session.run();
    EXPECT_TRUE(r.killedByPolicy);
    ASSERT_FALSE(r.alerts.empty());
    EXPECT_EQ(r.alerts.back().policy, "L1");
}

TEST(RuntimeSyscallArgs, TaintedPointerToOsCallRaisesL3)
{
    const char *src =
        "char buf[64];"
        "int main() {"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 8);"
        "  long off = buf[0] & 7;"       // tainted offset
        "  int out = open(\"o\", 1);"
        "  write(out, buf + off, 4);"    // tainted pointer to write()
        "  return 0;"
        "}";

    SessionOptions strict = shiftOptions();
    strict.policy.checkSyscallArgs = true;
    Session session(src, strict);
    session.os().addFile("f", "\x02junk");
    RunResult r = session.run();
    EXPECT_POLICY_KILL(r, "L3");

    // Default policy (off): legitimate bounds-checked offsets pass.
    SessionOptions lax = shiftOptions();
    Session session2(src, lax);
    session2.os().addFile("f", "\x02junk");
    RunResult r2 = session2.run();
    EXPECT_TRUE(r2.exited) << faultKindName(r2.fault.kind);
    EXPECT_TRUE(r2.alerts.empty());
}

TEST(RuntimeWraps, SprintfTaintsNumericConversionFromRegister)
{
    // %d taint comes from the argument REGISTER's NaT bit: the wrap
    // summary must translate register taint to output bytes.
    SessionOptions options = shiftOptions();
    Session session(
        "char out[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 8);"
        "  int secret = buf[0] * 2;"
        "  sprintf(out, \"v=%d!\", secret);"
        "  return __mem_tainted(&out[2]) * 10 + __mem_tainted(&out[0]);"
        "}",
        options);
    session.os().addFile("f", "\x21");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 10);
}

TEST(RuntimeWraps, FileSizeAndWriteFile)
{
    SessionOptions options;
    options.mode = TrackingMode::None;
    Session session(
        "int main() {"
        "  int out = open(\"new.txt\", 1);"
        "  write(out, \"12345\", 5);"
        "  close(out);"
        "  return (int)file_size(\"new.txt\")"
        "       + (file_size(\"absent\") == -1) * 100;"
        "}",
        options);
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 105);
}

TEST(RuntimeSession, PolicyConfigFlowsThrough)
{
    // granularity from the policy must drive both the instrumenter and
    // the host-side taint map.
    SessionOptions options = shiftOptions(Granularity::Word);
    Session session("int main() { return 0; }", options);
    EXPECT_EQ(session.taint().granularity(), Granularity::Word);
    EXPECT_EQ(session.options().instr.granularity, Granularity::Word);
}

TEST(RuntimeSession, StdlibCanBeExcluded)
{
    SessionOptions options;
    options.mode = TrackingMode::None;
    options.includeStdlib = false;
    Session session("int main() { return 9; }", options);
    RunResult r = session.run();
    EXPECT_EQ(r.exitCode, 9);
    // With the stdlib excluded, libc calls are unknown.
    Session bad("int main() { return (int)strlen(\"x\"); }", options);
    RunResult rbad = bad.run();
    EXPECT_EQ(rbad.fault.kind, FaultKind::UnknownFunction);
}

} // namespace
} // namespace shift
