/**
 * @file
 * ISA tests: disassembly golden strings, instruction predicates,
 * program containers, function descriptors and the global layout.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace shift
{
namespace
{

TEST(Disasm, GoldenStrings)
{
    EXPECT_EQ(disassemble(makeAlu(Opcode::Add, 4, 5, 6)),
              "add r4 = r5, r6");
    EXPECT_EQ(disassemble(makeAluImm(Opcode::Shl, 4, 5, 3)),
              "shl r4 = r5, 3");
    EXPECT_EQ(disassemble(makeMovi(7, -9)), "movl r7 = -9");
    EXPECT_EQ(disassemble(makeMov(2, 3)), "mov r2 = r3");
    EXPECT_EQ(disassemble(makeCmp(CmpRel::LtU, 1, 2, 3, 4)),
              "cmp.ltu p1, p2 = r3, r4");
    EXPECT_EQ(disassemble(makeLd(4, 5, 1)), "ld1 r4 = [r5]");
    EXPECT_EQ(disassemble(makeSt(5, 4, 8)), "st8 [r5] = r4");
    EXPECT_EQ(disassemble(makeExtr(4, 5, 61, 3)),
              "extr.u r4 = r5, 61, 3");
    EXPECT_EQ(disassemble(makeShladd(4, 5, 3, 6)),
              "shladd r4 = r5, 3, r6");
    EXPECT_EQ(disassemble(makeBr(3)), "br L3");
    EXPECT_EQ(disassemble(makeLabel(3)), "L3:");
    EXPECT_EQ(disassemble(makeCall("strcpy")), "br.call strcpy");
}

TEST(Disasm, Modifiers)
{
    Instr lds = makeLd(4, 5, 8);
    lds.spec = true;
    EXPECT_EQ(disassemble(lds), "ld8.s r4 = [r5]");
    Instr fill = makeLd(4, 5, 8);
    fill.fill = true;
    EXPECT_EQ(disassemble(fill), "ld8.fill r4 = [r5]");
    Instr spill = makeSt(5, 4, 8);
    spill.spill = true;
    EXPECT_EQ(disassemble(spill), "st8.spill [r5] = r4");
    Instr pred = makeMovi(4, 1);
    pred.qp = 12;
    EXPECT_EQ(disassemble(pred), "(p12) movl r4 = 1");
    Instr chk;
    chk.op = Opcode::Chk;
    chk.r2 = 9;
    chk.imm = 2;
    EXPECT_EQ(disassemble(chk), "chk.s r9, L2");
}

TEST(Isa, Predicates)
{
    EXPECT_TRUE(isLoad(makeLd(1, 2, 8)));
    EXPECT_FALSE(isLoad(makeSt(1, 2, 8)));
    EXPECT_TRUE(isStore(makeSt(1, 2, 8)));
    EXPECT_TRUE(isAlu(makeAlu(Opcode::Xor, 1, 2, 3)));
    EXPECT_TRUE(isAlu(makeMovi(1, 0)));
    EXPECT_FALSE(isAlu(makeLd(1, 2, 8)));
    EXPECT_TRUE(isBranch(makeBr(0)));
    EXPECT_TRUE(isBranch(makeCall("f")));
    EXPECT_FALSE(isBranch(makeMov(1, 2)));
}

TEST(Program, FunctionLookup)
{
    Program program;
    Function a;
    a.name = "alpha";
    Function b;
    b.name = "beta";
    program.addFunction(std::move(a));
    program.addFunction(std::move(b));
    EXPECT_EQ(program.findFunction("beta"), 1);
    EXPECT_FALSE(program.findFunction("gamma").has_value());
}

TEST(Program, StaticInstrCountSkipsLabels)
{
    Function fn;
    fn.code.push_back(makeLabel(0));
    fn.code.push_back(makeMovi(4, 1));
    fn.code.push_back(makeLabel(1));
    fn.code.push_back(makeMov(5, 4));
    EXPECT_EQ(Program::staticInstrCount(fn), 2u);
}

TEST(Program, FunctionDescriptors)
{
    EXPECT_EQ(funcIndexForDesc(funcDescAddr(0), 4), 0);
    EXPECT_EQ(funcIndexForDesc(funcDescAddr(3), 4), 3);
    EXPECT_FALSE(funcIndexForDesc(funcDescAddr(4), 4).has_value());
    EXPECT_FALSE(funcIndexForDesc(funcDescAddr(0) + 1, 4).has_value());
    EXPECT_FALSE(funcIndexForDesc(0, 4).has_value());
    EXPECT_EQ(regionOf(funcDescAddr(0)), kCodeRegion);
}

TEST(Program, GlobalLayoutIsAlignedAndOrdered)
{
    Program program;
    for (uint64_t size : {1, 24, 8, 100}) {
        GlobalDef g;
        g.name = "g" + std::to_string(size);
        g.size = size;
        program.globals.push_back(g);
    }
    GlobalLayout layout = computeGlobalLayout(program);
    uint64_t prevEnd = kGlobalBase;
    for (const GlobalDef &g : program.globals) {
        uint64_t addr = layout.addr.at(g.name);
        EXPECT_EQ(addr % 16, 0u);
        EXPECT_GE(addr, prevEnd);
        prevEnd = addr + g.size;
    }
    EXPECT_GE(layout.end, prevEnd);
}

TEST(Program, LabelAllocation)
{
    Function fn;
    EXPECT_EQ(fn.newLabel(), 0);
    EXPECT_EQ(fn.newLabel(), 1);
    EXPECT_EQ(fn.nextLabel, 2);
}

} // namespace
} // namespace shift
