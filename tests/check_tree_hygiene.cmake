# Tree-hygiene check: assert that no build directory is committed.
#
# Build trees (build/, build-tsan/, build-*/) are generated artifacts;
# committing one bloats the repo and pins host-specific paths. This
# script greps the git index, so it catches files that are *tracked*
# regardless of what is currently on disk. Run via ctest (see
# tests/CMakeLists.txt) or directly:
#
#   cmake -DREPO_ROOT=/path/to/repo -P tests/check_tree_hygiene.cmake
#
# Degrades gracefully (skips with a notice) when git or the .git
# directory is unavailable, e.g. in an exported source tarball.

if(NOT DEFINED REPO_ROOT)
    set(REPO_ROOT "${CMAKE_CURRENT_LIST_DIR}/..")
endif()

find_program(GIT_EXECUTABLE git)
if(NOT GIT_EXECUTABLE OR NOT EXISTS "${REPO_ROOT}/.git")
    message(STATUS "tree_hygiene: no git checkout here; skipping")
    return()
endif()

execute_process(
    COMMAND "${GIT_EXECUTABLE}" -C "${REPO_ROOT}" ls-files
    OUTPUT_VARIABLE tracked
    RESULT_VARIABLE status
    OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT status EQUAL 0)
    message(STATUS "tree_hygiene: git ls-files failed; skipping")
    return()
endif()

string(REPLACE "\n" ";" tracked_list "${tracked}")
set(offenders "")
foreach(path IN LISTS tracked_list)
    if(path MATCHES "^build(-[^/]*)?/")
        list(APPEND offenders "${path}")
    endif()
    # Observability droppings: flight-recorder traces and metrics
    # sink files are run artifacts, never sources.
    if(path MATCHES "\\.trace\\.json$" OR path MATCHES "(^|/)metrics\\.prom$")
        list(APPEND offenders "${path}")
    endif()
    # JIT droppings: perf-map style code-cache dumps are per-run
    # debugging artifacts, never sources.
    if(path MATCHES "\\.jitdump$")
        list(APPEND offenders "${path}")
    endif()
endforeach()

if(offenders)
    list(LENGTH offenders count)
    list(SUBLIST offenders 0 10 sample)
    string(JOIN "\n  " sample_text ${sample})
    message(FATAL_ERROR
        "tree_hygiene: ${count} tracked build/run artifact(s) — build "
        "trees, *.trace.json, *.jitdump, and metrics.prom must never "
        "be committed:\n  ${sample_text}")
endif()

message(STATUS "tree_hygiene: ok (no build directory tracked)")
