/**
 * @file
 * Taint-clean fast-path tests: the hierarchical summary, the
 * dual-version superblock tier, and the differential equivalence
 * harness (see docs/FAST-PATH.md).
 *
 * The fast tier elides bitmap checks/updates and NaT purges inside
 * superblocks whose summary probes prove the touched tag lines clean,
 * so its correctness statement is behavioural: with the fast path on,
 * every workload must produce the same verdicts, the same taint
 * bitmap and the same data/OS memory as with it off, while executing
 * no more instructions. The stack region is excluded from the memory
 * comparison for the same reason as in test_opt.cc: an elided
 * spill/reload purge legitimately leaves different dead bytes in the
 * purge's scratch slot below the stack pointer.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/memory.hh"
#include "mem/taint_summary.hh"
#include "runtime/session.hh"
#include "runtime/session_template.hh"
#include "session_helpers.hh"
#include "svc/fleet.hh"
#include "workloads/attacks.hh"
#include "workloads/httpd.hh"
#include "workloads/spec.hh"

namespace shift
{
namespace
{

using workloads::attackScenarios;
using workloads::AttackRun;
using workloads::httpdSessionOptions;
using workloads::kHttpdAttackRequest;
using workloads::kHttpdRequest;
using workloads::kHttpdSource;
using workloads::provisionHttpdOs;
using workloads::runAttackScenario;
using workloads::SpecKernel;
using workloads::specKernels;

// ---------------------------------------------------------------------
// Unit: the hierarchical summary itself.
// ---------------------------------------------------------------------

TEST(TaintSummary, MarkFlipsLineAndPage)
{
    TaintSummary s;
    uint64_t addr = 0x1234;
    EXPECT_FALSE(s.lineDirty(addr));
    EXPECT_FALSE(s.pageDirty(addr));
    EXPECT_EQ(s.dirtyPageCount(), 0u);

    s.mark(addr, 1);
    EXPECT_TRUE(s.lineDirty(addr));
    EXPECT_TRUE(s.pageDirty(addr));
    EXPECT_EQ(s.dirtyPageCount(), 1u);
    EXPECT_EQ(s.dirtyLineCount(), 1u);
    // Only the touched line, not its neighbours.
    EXPECT_FALSE(s.lineDirty(addr + 64));
    EXPECT_FALSE(s.lineDirty(addr - 64));
}

TEST(TaintSummary, LineStraddlingMarkDirtiesBothLines)
{
    TaintSummary s;
    uint64_t lastOfLine = 63; // an 8-byte write from here crosses
    s.mark(lastOfLine, 8);
    EXPECT_TRUE(s.lineDirty(63));
    EXPECT_TRUE(s.lineDirty(64));
    EXPECT_EQ(s.dirtyLineCount(), 2u);
    // pairDirty covers the byte-granularity 2-byte probe window.
    EXPECT_TRUE(s.pairDirty(62));  // second byte lands in line 0
    EXPECT_TRUE(s.pairDirty(127)); // second byte in line 2: first is dirty
    EXPECT_FALSE(s.pairDirty(128));
}

TEST(TaintSummary, CopiesAreIsolated)
{
    TaintSummary a;
    a.mark(0x1000, 1);
    TaintSummary b = a; // copy: clone-from-snapshot semantics
    EXPECT_TRUE(b.lineDirty(0x1000));
    b.mark(0x2000, 1);
    EXPECT_FALSE(a.lineDirty(0x2000)) << "copy wrote through to source";
    a.mark(0x3000, 1);
    EXPECT_FALSE(b.lineDirty(0x3000)) << "source wrote through to copy";
}

// ---------------------------------------------------------------------
// Coherence: the Memory write path maintains the summary.
// ---------------------------------------------------------------------

TEST(SummaryCoherence, NonzeroTagWriteMarksZeroWriteDoesNot)
{
    Memory mem;
    uint64_t tagAddr = regionBase(kTagRegion) + 0x4000;
    mem.map(tagAddr & ~0xFFFULL, 4096);

    ASSERT_EQ(mem.write(tagAddr, 1, 0), MemFault::None);
    EXPECT_FALSE(mem.taintSummary().lineDirty(tagAddr))
        << "zero store must not dirty the summary";

    ASSERT_EQ(mem.write(tagAddr, 1, 0x40), MemFault::None);
    EXPECT_TRUE(mem.taintSummary().lineDirty(tagAddr));

    // Sticky: clearing the taint bit leaves the line dirty (clean-NaT
    // style untaint is conservative by design).
    ASSERT_EQ(mem.write(tagAddr, 1, 0), MemFault::None);
    EXPECT_TRUE(mem.taintSummary().lineDirty(tagAddr));
}

TEST(SummaryCoherence, DataRegionWritesNeverMark)
{
    Memory mem;
    uint64_t dataAddr = regionBase(kDataRegion) + 0x4000;
    mem.map(dataAddr & ~0xFFFULL, 4096);
    ASSERT_EQ(mem.write(dataAddr, 8, 0xFFFFFFFFFFFFFFFFULL),
              MemFault::None);
    EXPECT_EQ(mem.taintSummary().dirtyPageCount(), 0u);
}

TEST(SummaryCoherence, SnapshotRestoreIsolatesSiblings)
{
    Memory mem;
    uint64_t tagAddr = regionBase(kTagRegion) + 0x8000;
    mem.map(tagAddr & ~0xFFFULL, 4096);
    ASSERT_EQ(mem.write(tagAddr, 1, 1), MemFault::None);

    Memory::Snapshot snap = mem.snapshot();

    Memory a, b;
    a.restore(snap);
    b.restore(snap);
    EXPECT_TRUE(a.taintSummary().lineDirty(tagAddr));
    EXPECT_TRUE(b.taintSummary().lineDirty(tagAddr));

    // A writes a fresh tag line; B must not see it (and vice versa).
    ASSERT_EQ(a.write(tagAddr + 1024, 1, 2), MemFault::None);
    EXPECT_TRUE(a.taintSummary().lineDirty(tagAddr + 1024));
    EXPECT_FALSE(b.taintSummary().lineDirty(tagAddr + 1024))
        << "clone summaries must be isolated";
    ASSERT_EQ(b.write(tagAddr + 2048, 1, 4), MemFault::None);
    EXPECT_FALSE(a.taintSummary().lineDirty(tagAddr + 2048));
}

// ---------------------------------------------------------------------
// The tier itself: clean runs stay fast, tainted lines deopt.
// ---------------------------------------------------------------------

/** A compute loop over untainted data: everything should stay fast. */
const char *kCleanSource =
    "char buf[256];\n"
    "int main() {\n"
    "  long sum = 0;\n"
    "  for (int i = 0; i < 256; i++) buf[i] = (char)i;\n"
    "  for (int i = 0; i < 256; i++) sum += buf[i];\n"
    "  return (int)(sum & 127);\n"
    "}\n";

/** The same loop over tainted file input: probes must deopt. */
const char *kTaintedSource =
    "char buf[256];\n"
    "int main() {\n"
    "  int fd = open(\"input.dat\", 0);\n"
    "  int n = read(fd, buf, 255);\n"
    "  close(fd);\n"
    "  long sum = 0;\n"
    "  for (int i = 0; i < n; i++) sum += buf[i];\n"
    "  return (int)(sum & 127);\n"
    "}\n";

RunResult
runWithFastPath(const std::string &source, bool fastPath,
                const std::string &input = {})
{
    SessionOptions options = testutil::shiftOptions(Granularity::Byte);
    options.fastPath = fastPath;
    Session session(source, options);
    if (!input.empty())
        session.os().addFile("input.dat", input);
    return session.run();
}

TEST(FastTier, CleanRunEntersAndNeverDeopts)
{
    SessionOptions options = testutil::shiftOptions(Granularity::Byte);
    options.fastPath = true;
    Session session(kCleanSource, options);
    RunResult result = session.run();
    EXPECT_EXIT_CODE(result, 0); // signed chars: sum is -128, & 127 = 0
    EXPECT_GT(session.machine().fastBlocksEntered(), 0u);
    EXPECT_EQ(session.machine().fastDeopts(), 0u)
        << "no taint anywhere: no probe may fail";
    EXPECT_GT(result.stats.get("fastpath.entered"), 0u);
    EXPECT_EQ(result.stats.get("fastpath.deopts"), 0u);
}

TEST(FastTier, TaintedDataDeopts)
{
    SessionOptions options = testutil::shiftOptions(Granularity::Byte);
    options.fastPath = true;
    Session session(kTaintedSource, options);
    session.os().addFile("input.dat", "abcdefgh");
    RunResult result = session.run();
    EXPECT_TRUE(result.exited) << result.fault.detail;
    EXPECT_GT(session.machine().fastDeopts(), 0u)
        << "reading tainted bytes must fail clean-line probes";
    EXPECT_GT(result.stats.get("fastpath.deopts"), 0u);
}

TEST(FastTier, OffByDefaultAndCountsAreZero)
{
    RunResult result = runWithFastPath(kCleanSource, false);
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(result.stats.get("fastpath.entered"), 0u);
    EXPECT_EQ(result.stats.get("fastpath.deopts"), 0u);
}

TEST(FastTier, CleanRunExecutesFewerInstructions)
{
    RunResult off = runWithFastPath(kCleanSource, false);
    RunResult on = runWithFastPath(kCleanSource, true);
    EXPECT_EQ(off.exitCode, on.exitCode);
    EXPECT_LT(on.instructions, off.instructions)
        << "elided checks/updates must shrink the simulated stream";
    EXPECT_LT(on.cycles, off.cycles);
}

// ---------------------------------------------------------------------
// Differential equivalence (mirrors test_opt.cc's harness): fast path
// on vs off must be observationally identical everywhere it matters.
// ---------------------------------------------------------------------

struct DiffRun
{
    RunResult result;
    uint64_t tagHash = 0;  ///< taint bitmap (region 0)
    uint64_t dataHash = 0; ///< globals + heap (region 2)
    uint64_t osHash = 0;   ///< OS staging (region 4)
    std::vector<std::string> responses;
};

DiffRun
captureRun(Session &session)
{
    DiffRun run;
    run.result = session.run();
    const Memory &mem = session.machine().memory();
    run.tagHash = mem.contentHash(kTagRegion);
    run.dataHash = mem.contentHash(kDataRegion);
    run.osHash = mem.contentHash(kOsRegion);
    run.responses = session.os().responses();
    return run;
}

void
expectEquivalent(const DiffRun &off, const DiffRun &on,
                 const std::string &what)
{
    EXPECT_EQ(off.result.exited, on.result.exited) << what;
    EXPECT_EQ(off.result.exitCode, on.result.exitCode) << what;
    EXPECT_EQ(off.result.killedByPolicy, on.result.killedByPolicy)
        << what;
    ASSERT_EQ(off.result.alerts.size(), on.result.alerts.size()) << what;
    for (size_t i = 0; i < off.result.alerts.size(); ++i) {
        EXPECT_EQ(off.result.alerts[i].policy, on.result.alerts[i].policy)
            << what;
    }
    EXPECT_EQ(off.tagHash, on.tagHash) << what << ": taint bitmap";
    EXPECT_EQ(off.dataHash, on.dataHash) << what << ": data memory";
    EXPECT_EQ(off.osHash, on.osHash) << what << ": OS memory";
    EXPECT_EQ(off.responses, on.responses) << what;
    // The fast tier must never execute MORE instructions.
    EXPECT_LE(on.result.instructions, off.result.instructions) << what;
    EXPECT_LE(on.result.cycles, off.result.cycles) << what;
}

class FastDiffSpecTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, FastDiffSpecTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word));

DiffRun
runKernel(const SpecKernel &kernel, Granularity granularity,
          bool fastPath)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.granularity = granularity;
    options.policy.taintFile = true;
    options.instr.relaxLoadFunctions = kernel.relaxLoadFunctions;
    options.instr.relaxStoreFunctions = kernel.relaxStoreFunctions;
    options.fastPath = fastPath;
    Session session(kernel.source, options);
    session.os().addFile("input.dat",
                         kernel.makeInput(kernel.defaultScale));
    return captureRun(session);
}

TEST_P(FastDiffSpecTest, AllKernelsEquivalent)
{
    for (const SpecKernel &kernel : specKernels()) {
        DiffRun off = runKernel(kernel, GetParam(), false);
        DiffRun on = runKernel(kernel, GetParam(), true);
        EXPECT_TRUE(off.result.exited) << kernel.name;
        expectEquivalent(off, on, kernel.name);
    }
}

TEST(FastDiffHttpd, ResponsesAndMemoryIdentical)
{
    DiffRun runs[2];
    uint64_t entered = 0;
    for (bool fastPath : {false, true}) {
        SessionOptions options = httpdSessionOptions(
            TrackingMode::Shift, Granularity::Byte, {},
            ExecEngine::Predecoded);
        options.fastPath = fastPath;
        Session session(kHttpdSource, options);
        provisionHttpdOs(session.os(), 512);
        for (int i = 0; i < 5; ++i)
            session.os().queueConnection(kHttpdRequest);
        runs[fastPath] = captureRun(session);
        if (fastPath)
            entered = session.machine().fastBlocksEntered();
    }
    EXPECT_TRUE(runs[0].result.exited);
    EXPECT_EQ(runs[0].responses.size(), 5u);
    expectEquivalent(runs[0], runs[1], "httpd");
    EXPECT_GT(entered, 0u) << "serving must actually use the fast tier";
}

class FastDiffAttackTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(Granularities, FastDiffAttackTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word));

TEST_P(FastDiffAttackTest, AllScenariosSameVerdicts)
{
    for (const auto &scenario : attackScenarios()) {
        AttackRun exploitOff = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded, {},
            false);
        AttackRun exploitOn = runAttackScenario(
            scenario, true, GetParam(), ExecEngine::Predecoded, {},
            true);
        EXPECT_TRUE(exploitOff.detected) << scenario.name;
        EXPECT_TRUE(exploitOn.detected)
            << scenario.name << ": fast path lost a detection";
        ASSERT_FALSE(exploitOn.result.alerts.empty()) << scenario.name;
        EXPECT_EQ(exploitOn.result.alerts.back().policy,
                  scenario.expectedPolicy)
            << scenario.name;

        AttackRun benignOff = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded, {},
            false);
        AttackRun benignOn = runAttackScenario(
            scenario, false, GetParam(), ExecEngine::Predecoded, {},
            true);
        EXPECT_FALSE(benignOff.falsePositive) << scenario.name;
        EXPECT_FALSE(benignOn.falsePositive)
            << scenario.name << ": fast path introduced a false positive";
        EXPECT_EQ(benignOff.result.exitCode, benignOn.result.exitCode)
            << scenario.name;
        EXPECT_LE(benignOn.result.instructions,
                  benignOff.result.instructions)
            << scenario.name;
    }
}

// ---------------------------------------------------------------------
// Fleet: clones share the template's frozen summary but dirty only
// their own copies, and the report carries the fast-tier aggregates.
// ---------------------------------------------------------------------

std::unique_ptr<SessionTemplate>
makeFastTemplate()
{
    SessionOptions options = httpdSessionOptions(
        TrackingMode::Shift, Granularity::Byte, {},
        ExecEngine::Predecoded);
    options.fastPath = true;
    auto tmpl = std::make_unique<SessionTemplate>(
        std::string(kHttpdSource), std::move(options));
    provisionHttpdOs(tmpl->os(), 512);
    return tmpl;
}

TEST(FastFleet, AttackCloneDoesNotPoisonSiblingSummaries)
{
    auto tmpl = makeFastTemplate();

    // Baseline: a benign clone served before any attack ran.
    auto before = tmpl->instantiate();
    before->os().queueConnection(kHttpdRequest);
    RunResult beforeRun = before->run();
    EXPECT_TRUE(beforeRun.exited) << beforeRun.fault.detail;
    uint64_t beforeTagHash =
        before->machine().memory().contentHash(kTagRegion);
    size_t beforeDirty =
        before->machine().memory().taintSummary().dirtyLineCount();

    // An attack clone trips H2 and dirties its own summary copy (the
    // run is killed early, so its absolute line count may well be
    // below a full benign serve's — what matters is isolation).
    auto attack = tmpl->instantiate();
    attack->os().queueConnection(kHttpdAttackRequest);
    RunResult attackRun = attack->run();
    EXPECT_TRUE(attackRun.killedByPolicy);
    EXPECT_GT(
        attack->machine().memory().taintSummary().dirtyLineCount(), 0u);

    // A benign clone served AFTER the attack must be bit-identical to
    // the one served before: summaries are value-copied per clone.
    auto after = tmpl->instantiate();
    after->os().queueConnection(kHttpdRequest);
    RunResult afterRun = after->run();
    EXPECT_TRUE(afterRun.exited) << afterRun.fault.detail;
    EXPECT_EQ(afterRun.instructions, beforeRun.instructions);
    EXPECT_EQ(afterRun.cycles, beforeRun.cycles);
    EXPECT_EQ(after->machine().memory().contentHash(kTagRegion),
              beforeTagHash);
    EXPECT_EQ(
        after->machine().memory().taintSummary().dirtyLineCount(),
        beforeDirty);
}

TEST(FastFleet, ReportCarriesFastTierAggregates)
{
    auto tmpl = makeFastTemplate();

    std::vector<svc::FleetJob> jobs;
    for (int j = 0; j < 4; ++j) {
        svc::FleetJob job;
        job.id = j;
        job.requests = {kHttpdRequest, kHttpdRequest};
        jobs.push_back(std::move(job));
    }

    svc::FleetOptions fleetOptions;
    fleetOptions.workers = 2;
    svc::Fleet fleet(*tmpl, fleetOptions);
    svc::FleetReport report = fleet.serve(jobs);

    EXPECT_TRUE(report.allOk);
    EXPECT_EQ(report.jobs, 4u);
    EXPECT_GT(report.fastBlocksEntered, 0u);
    EXPECT_EQ(report.fastBlocksEntered,
              report.stats.get("fastpath.entered"));
    EXPECT_EQ(report.fastDeopts, report.stats.get("fastpath.deopts"));
    // Clean requests must mostly stay on the fast tier.
    EXPECT_LT(report.fastDeopts, report.fastBlocksEntered / 2);
}

} // namespace
} // namespace shift
