/**
 * @file
 * Fused taint micro-op tests.
 *
 * The predecoder collapses the instrumenter's canonical idioms (the
 * tag-address fold, the 4/9-instruction bitmap checks, the spill/
 * reload NaT purge, the bitmap RMW store update) into single Fused*
 * micro-ops. This suite pins the contract:
 *
 *  - instrumented programs actually fuse (the idioms are recognized at
 *    both granularities, and `fuse = false` keeps a one-to-one
 *    stream);
 *  - the fused engine is observationally identical to the legacy
 *    stepper on instrumented programs, including NaT-consumption
 *    faults whose architectural pc lies INSIDE a fused group (the
 *    store-update's tag-bitmap load is constituent 3 of a 13-wide
 *    group);
 *  - trace hooks see every architectural instruction individually
 *    (setTraceHook re-decodes without fusion).
 */

#include <gtest/gtest.h>

#include <map>

#include "runtime/session.hh"
#include "session_helpers.hh"
#include "sim/decoded.hh"

namespace shift
{
namespace
{

/** Constituent count of each fused micro-op (architectural instrs). */
int
fusedWidth(Opcode op)
{
    switch (op) {
      case Opcode::FusedTagAddr:
        return 4;
      case Opcode::FusedChkByte:
        return 9;
      case Opcode::FusedChkWord:
        return 4;
      case Opcode::FusedClearNat:
        return 3;
      case Opcode::FusedStUpdByte:
        return 13;
      case Opcode::FusedStUpdWord:
        return 7;
      default:
        return 0;
    }
}

/** Decode an instrumented program and count micro-ops per opcode. */
std::map<Opcode, int>
fusedCounts(const Program &program, bool fuse)
{
    DecodedProgram decoded;
    Fault error;
    EXPECT_TRUE(decodeProgram(program, decoded, error, fuse))
        << error.detail;
    std::map<Opcode, int> counts;
    for (const DecodedFunction &fn : decoded.functions) {
        for (const DecodedInstr &dp : fn.code) {
            if (static_cast<size_t>(dp.op) >= kFirstFusedOpcode)
                ++counts[dp.op];
        }
    }
    return counts;
}

const char *kMixedSource =
    "char buf[64];\n"
    "int main() {\n"
    "  int fd = open(\"input.dat\", 0);\n"
    "  int n = read(fd, buf, 32);\n"
    "  close(fd);\n"
    "  long sum = 0;\n"
    "  for (int i = 0; i < n; i++) {\n"
    "    buf[i] = (char)(buf[i] + 1);\n"
    "    sum += buf[i];\n"
    "  }\n"
    "  return (int)(sum & 127);\n"
    "}\n";

TEST(FusedDecode, ByteGranularityIdiomsFuse)
{
    Session session(kMixedSource,
                    testutil::shiftOptions(Granularity::Byte));
    const Program &program = session.program();

    std::map<Opcode, int> fused = fusedCounts(program, true);
    EXPECT_GT(fused[Opcode::FusedTagAddr], 0);
    EXPECT_GT(fused[Opcode::FusedChkByte], 0);
    EXPECT_GT(fused[Opcode::FusedStUpdByte], 0);
    EXPECT_GT(fused[Opcode::FusedClearNat], 0);
    EXPECT_EQ(fused[Opcode::FusedChkWord], 0);
    EXPECT_EQ(fused[Opcode::FusedStUpdWord], 0);

    std::map<Opcode, int> unfused = fusedCounts(program, false);
    EXPECT_TRUE(unfused.empty());
}

TEST(FusedDecode, WordGranularityIdiomsFuse)
{
    Session session(kMixedSource,
                    testutil::shiftOptions(Granularity::Word));
    std::map<Opcode, int> fused = fusedCounts(session.program(), true);
    EXPECT_GT(fused[Opcode::FusedTagAddr], 0);
    EXPECT_GT(fused[Opcode::FusedChkWord], 0);
    EXPECT_GT(fused[Opcode::FusedStUpdWord], 0);
    EXPECT_EQ(fused[Opcode::FusedChkByte], 0);
    EXPECT_EQ(fused[Opcode::FusedStUpdByte], 0);
}

// ---------------------------------------------------------------------
// Engine equivalence with faults inside fused groups.
// ---------------------------------------------------------------------

struct FaultRun
{
    RunResult result;
    Program program; ///< the instrumented program that ran
};

FaultRun
runTainted(const std::string &source, Granularity granularity,
           ExecEngine engine, const std::string &input)
{
    SessionOptions options = testutil::shiftOptions(granularity);
    options.engine = engine;
    Session session(source, options);
    session.os().addFile("input.dat", input);
    FaultRun run;
    run.result = session.run();
    run.program = session.program();
    return run;
}

void
expectSameAlert(const RunResult &legacy, const RunResult &pre,
                const std::string &what)
{
    EXPECT_EQ(legacy.killedByPolicy, pre.killedByPolicy) << what;
    EXPECT_EQ(legacy.instructions, pre.instructions) << what;
    EXPECT_EQ(legacy.cycles, pre.cycles) << what;
    ASSERT_EQ(legacy.alerts.size(), pre.alerts.size()) << what;
    for (size_t i = 0; i < legacy.alerts.size(); ++i) {
        EXPECT_EQ(legacy.alerts[i].policy, pre.alerts[i].policy) << what;
        EXPECT_EQ(legacy.alerts[i].function, pre.alerts[i].function)
            << what;
        EXPECT_EQ(legacy.alerts[i].pc, pre.alerts[i].pc) << what;
    }
}

/**
 * True when `pc` in `function` lies strictly inside a fused group
 * (i.e. it is a constituent other than the first, so the fault had to
 * be raised from within a fused handler with an overridden pc).
 */
bool
pcInsideFusedGroup(const Program &program, int functionIndex,
                   uint64_t pc)
{
    DecodedProgram decoded;
    Fault error;
    if (!decodeProgram(program, decoded, error, true))
        return false;
    if (functionIndex < 0 ||
        static_cast<size_t>(functionIndex) >= decoded.functions.size())
        return false;
    const DecodedFunction &fn = decoded.functions[functionIndex];
    for (const DecodedInstr &dp : fn.code) {
        int width = fusedWidth(dp.op);
        if (width == 0)
            continue;
        uint64_t first = static_cast<uint64_t>(dp.origIndex);
        if (pc > first && pc < first + width)
            return true;
    }
    return false;
}

TEST(FusedFaults, TaintedLoadAddressMatchesLegacy)
{
    const char *source =
        "int table[64];\n"
        "int main() {\n"
        "  char buf[8];\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  read(fd, buf, 8);\n"
        "  int idx = buf[0];\n"
        "  return table[idx];\n"
        "}\n";
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        FaultRun legacy =
            runTainted(source, g, ExecEngine::Legacy, "\x05");
        FaultRun pre =
            runTainted(source, g, ExecEngine::Predecoded, "\x05");
        ASSERT_TRUE(pre.result.killedByPolicy);
        EXPECT_EQ(pre.result.alerts.back().policy, "L1");
        expectSameAlert(legacy.result, pre.result, "load");
    }
}

TEST(FusedFaults, TaintedStoreAddressFaultsInsideFusedGroup)
{
    const char *source =
        "int table[64];\n"
        "int main() {\n"
        "  char buf[8];\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  read(fd, buf, 8);\n"
        "  int idx = buf[0];\n"
        "  table[idx] = 1;\n"
        "  return 0;\n"
        "}\n";
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        FaultRun legacy =
            runTainted(source, g, ExecEngine::Legacy, "\x07");
        FaultRun pre =
            runTainted(source, g, ExecEngine::Predecoded, "\x07");
        ASSERT_TRUE(pre.result.killedByPolicy);
        EXPECT_EQ(pre.result.alerts.back().policy, "L2");
        expectSameAlert(legacy.result, pre.result, "store");

        // The tag-bitmap load that consumed the NaT is an interior
        // constituent of the fused store-update group: the alert's
        // architectural pc must come from the handler's pc override.
        const SecurityAlert &alert = pre.result.alerts.back();
        EXPECT_TRUE(pcInsideFusedGroup(pre.program, alert.function,
                                       alert.pc))
            << alert.function << "+" << alert.pc;
    }
}

// ---------------------------------------------------------------------
// Trace hooks force the unfused stream.
// ---------------------------------------------------------------------

TEST(FusedTrace, TraceHookSeesEveryArchitecturalInstruction)
{
    Session session(kMixedSource,
                    testutil::shiftOptions(Granularity::Byte));
    session.os().addFile("input.dat", "trace-hook-check");

    // The program fuses; the hook must still see one callback per
    // architectural instruction (the machine re-decodes unfused).
    EXPECT_FALSE(fusedCounts(session.program(), true).empty());

    uint64_t traced = 0;
    session.machine().setTraceHook(
        [&traced](const Machine &, const Instr &) { ++traced; });
    RunResult result = session.run();
    EXPECT_TRUE(result.exited) << result.fault.detail;
    EXPECT_EQ(traced, result.instructions);
}

} // namespace
} // namespace shift
