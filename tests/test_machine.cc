/**
 * @file
 * Machine tests: the deferred-exception (NaT) semantics contract that
 * SHIFT's whole mechanism rests on, plus faults, predication,
 * spill/fill, the UNAT register, calls and accounting.
 *
 * Programs are hand-assembled instruction sequences so every
 * architectural rule is tested in isolation from the compiler.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "sim/machine.hh"

namespace shift
{
namespace
{

/** Wrap a raw instruction sequence into a runnable program. */
Program
makeProgram(std::vector<Instr> code, int numLabels = 8)
{
    Program program;
    Function fn;
    fn.name = "main";
    fn.code = std::move(code);
    fn.nextLabel = numLabels;
    Instr ret;
    ret.op = Opcode::BrRet;
    fn.code.push_back(ret);
    program.addFunction(std::move(fn));
    return program;
}

/** Run and return the machine for state inspection. */
struct RunHarness
{
    Program program;
    std::unique_ptr<Machine> machine;
    RunResult result;

    explicit RunHarness(std::vector<Instr> code,
                        CpuFeatures features = {})
        : program(makeProgram(std::move(code)))
    {
        machine = std::make_unique<Machine>(program, features);
    }

    void run() { result = machine->run(100000); }
};

/** A data address in the mapped globals area. */
Program
withGlobal(std::vector<Instr> code, uint64_t size = 64)
{
    Program program = makeProgram(std::move(code));
    GlobalDef g;
    g.name = "g";
    g.size = size;
    program.globals.push_back(g);
    return program;
}

// ---------------------------------------------------------------------
// NaT propagation through computation.
// ---------------------------------------------------------------------

class AluNatTest : public ::testing::TestWithParam<Opcode>
{
};

INSTANTIATE_TEST_SUITE_P(
    Opcodes, AluNatTest,
    ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul,
                      Opcode::And, Opcode::Andcm, Opcode::Or,
                      Opcode::Xor, Opcode::Shl, Opcode::Shr,
                      Opcode::Sar, Opcode::Shladd),
    [](const auto &info) {
        // Param names must be alphanumeric: strip dots from mnemonics.
        std::string name = opcodeName(info.param);
        std::string out;
        for (char c : name) {
            if (c != '.')
                out.push_back(c);
        }
        return out;
    });

TEST_P(AluNatTest, NatPropagatesFromEitherSource)
{
    // Manufacture NaT with a speculative load from an unimplemented
    // address (the paper's own trick), then check it ORs through the
    // operation from either source position.
    for (int which : {0, 1}) {
        std::vector<Instr> code;
        code.push_back(makeMovi(4, 12));
        code.push_back(makeMovi(5, 3));
        code.push_back(makeMovi(7, int64_t(kInvalidAddress)));
        Instr lds = makeLd(7, 7, 8);
        lds.spec = true;
        code.push_back(lds);
        // Taint r4 or r5 by adding the NaT source (value 0).
        code.push_back(makeAlu(Opcode::Add, which ? 5 : 4,
                               which ? 5 : 4, 7));
        code.push_back(makeAlu(GetParam(), 6, 4, 5));
        RunHarness h(code);
        h.run();
        ASSERT_TRUE(h.result.exited);
        EXPECT_TRUE(h.machine->gprNat(6))
            << "NaT lost through " << opcodeName(GetParam());
        EXPECT_FALSE(h.machine->gprNat(which ? 4 : 5));
    }
}

TEST(MachineNat, MoviClearsNat)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(kInvalidAddress)));
    Instr lds = makeLd(4, 4, 8);
    lds.spec = true;
    code.push_back(lds);
    code.push_back(makeMovi(4, 9)); // overwrite with an immediate
    RunHarness h(code);
    h.run();
    EXPECT_FALSE(h.machine->gprNat(4));
    EXPECT_EQ(h.machine->gprVal(4), 9u);
}

TEST(MachineNat, NatSourceHasValueZero)
{
    // The manufactured NaT register reads as zero, so `add r, r, nat`
    // taints without changing the value (figure 5).
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 41));
    code.push_back(makeMovi(7, int64_t(kInvalidAddress)));
    Instr lds = makeLd(7, 7, 8);
    lds.spec = true;
    code.push_back(lds);
    code.push_back(makeAlu(Opcode::Add, 4, 4, 7));
    RunHarness h(code);
    h.run();
    EXPECT_TRUE(h.machine->gprNat(4));
    EXPECT_EQ(h.machine->gprVal(4), 41u);
}

// ---------------------------------------------------------------------
// Speculative loads.
// ---------------------------------------------------------------------

TEST(MachineSpec, SpeculativeLoadDefersUnimplementedAddress)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(kInvalidAddress)));
    Instr lds = makeLd(5, 4, 8);
    lds.spec = true;
    code.push_back(lds);
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_TRUE(h.machine->gprNat(5));
    EXPECT_EQ(h.machine->gprVal(5), 0u);
}

TEST(MachineSpec, SpeculativeLoadDefersUnmappedAddress)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(regionBase(kDataRegion))));
    Instr lds = makeLd(5, 4, 8);
    lds.spec = true;
    code.push_back(lds);
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_TRUE(h.machine->gprNat(5));
}

TEST(MachineSpec, SpeculativeLoadFromValidAddressLoads)
{
    // The first global lands at kGlobalBase by the deterministic
    // layout rule.
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(kGlobalBase)));
    Instr lds = makeLd(5, 4, 8);
    lds.spec = true;
    code.push_back(lds);
    Program program = withGlobal(code);
    Machine machine(program);
    ASSERT_EQ(machine.globalAddr("g"), kGlobalBase);
    machine.memory().write(kGlobalBase, 8, 0x1234);
    RunResult r = machine.run(1000);
    ASSERT_TRUE(r.exited);
    EXPECT_FALSE(machine.gprNat(5));
    EXPECT_EQ(machine.gprVal(5), 0x1234u);
}

TEST(MachineSpec, SpeculativeLoadPropagatesAddressNat)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(kInvalidAddress)));
    Instr lds = makeLd(4, 4, 8);
    lds.spec = true;
    code.push_back(lds); // r4 now NaT
    Instr lds2 = makeLd(5, 4, 8);
    lds2.spec = true;
    code.push_back(lds2); // NaT address -> NaT result, not a fault
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_TRUE(h.machine->gprNat(5));
}

// ---------------------------------------------------------------------
// NaT consumption faults.
// ---------------------------------------------------------------------

std::vector<Instr>
natInR4()
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, int64_t(kInvalidAddress)));
    Instr lds = makeLd(4, 4, 8);
    lds.spec = true;
    code.push_back(lds);
    return code;
}

TEST(MachineFaults, PlainLoadThroughNatFaults)
{
    auto code = natInR4();
    code.push_back(makeLd(5, 4, 8));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::NatConsumption);
    EXPECT_EQ(h.result.fault.context, FaultContext::LoadAddress);
}

TEST(MachineFaults, StoreThroughNatAddressFaults)
{
    auto code = natInR4();
    code.push_back(makeMovi(5, 1));
    code.push_back(makeSt(4, 5, 8));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::NatConsumption);
    EXPECT_EQ(h.result.fault.context, FaultContext::StoreAddress);
}

TEST(MachineFaults, PlainStoreOfNatSourceFaults)
{
    auto code = natInR4();
    code.push_back(makeMovi(5, int64_t(kGlobalBase)));
    code.push_back(makeSt(5, 4, 8));
    Program program = withGlobal(code);
    Machine machine(program);
    RunResult r = machine.run(1000);
    EXPECT_EQ(r.fault.kind, FaultKind::NatConsumption);
    EXPECT_EQ(r.fault.context, FaultContext::StoreValue);
}

TEST(MachineFaults, MovToBranchRegisterWithNatFaults)
{
    auto code = natInR4();
    Instr mov;
    mov.op = Opcode::MovToBr;
    mov.br = 6;
    mov.r2 = 4;
    code.push_back(mov);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::NatConsumption);
    EXPECT_EQ(h.result.fault.context, FaultContext::ControlFlow);
}

TEST(MachineFaults, NatFaultHandlerConvertsToAlert)
{
    auto code = natInR4();
    code.push_back(makeLd(5, 4, 8));
    RunHarness h(code);
    h.machine->setNatFaultHandler(
        [](Machine &, const Fault &fault)
            -> std::optional<SecurityAlert> {
            SecurityAlert alert;
            alert.policy = "L1";
            alert.message = fault.detail;
            return alert;
        });
    h.run();
    EXPECT_FALSE(h.result.fault);
    EXPECT_TRUE(h.result.killedByPolicy);
    ASSERT_EQ(h.result.alerts.size(), 1u);
    EXPECT_EQ(h.result.alerts[0].policy, "L1");
}

TEST(MachineFaults, DivisionByZeroFaults)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 10));
    code.push_back(makeMovi(5, 0));
    code.push_back(makeAlu(Opcode::Div, 6, 4, 5));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::DivByZero);
}

TEST(MachineFaults, DivisionByNatZeroDefersInsteadOfFaulting)
{
    // Divisor is NaT (value 0): the NaT wins; no architectural fault.
    auto code = natInR4(); // r4 = NaT, value 0
    code.push_back(makeMovi(5, 10));
    code.push_back(makeAlu(Opcode::Div, 6, 5, 4));
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited) << faultKindName(h.result.fault.kind);
    EXPECT_TRUE(h.machine->gprNat(6));
}

TEST(MachineFaults, StepLimit)
{
    std::vector<Instr> code;
    code.push_back(makeLabel(0));
    code.push_back(makeBr(0));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::StepLimit);
}

TEST(MachineFaults, UnknownCalleeFaults)
{
    std::vector<Instr> code;
    code.push_back(makeCall("no_such_function"));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::UnknownFunction);
}

// ---------------------------------------------------------------------
// Compares and predicates.
// ---------------------------------------------------------------------

TEST(MachineCmp, NatOperandClearsBothPredicates)
{
    auto code = natInR4();
    // Pre-set p2 and p3 so the clearing is observable.
    code.insert(code.begin(), makeCmpImm(CmpRel::Eq, 2, 3, 0, 0));
    code.push_back(makeCmpImm(CmpRel::Eq, 2, 3, 4, 0));
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_FALSE(h.machine->pred(2));
    EXPECT_FALSE(h.machine->pred(3));
}

TEST(MachineCmp, NatAwareCompareIgnoresNat)
{
    auto code = natInR4(); // r4 NaT, value 0
    Instr cmp = makeCmpImm(CmpRel::Eq, 2, 3, 4, 0);
    cmp.op = Opcode::CmpNat;
    code.push_back(cmp);
    CpuFeatures features;
    features.natAwareCompare = true;
    RunHarness h(code, features);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_TRUE(h.machine->pred(2));  // 0 == 0 despite the NaT
    EXPECT_FALSE(h.machine->pred(3));
}

TEST(MachineCmp, NatAwareCompareRequiresFeature)
{
    std::vector<Instr> code;
    Instr cmp = makeCmpImm(CmpRel::Eq, 2, 3, 4, 0);
    cmp.op = Opcode::CmpNat;
    code.push_back(cmp);
    RunHarness h(code); // feature off
    h.run();
    EXPECT_TRUE(bool(h.result.fault));
}

TEST(MachineCmp, TnatReadsWithoutConsuming)
{
    auto code = natInR4();
    Instr tn;
    tn.op = Opcode::Tnat;
    tn.p1 = 2;
    tn.p2 = 3;
    tn.r2 = 4;
    code.push_back(tn);
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_TRUE(h.machine->pred(2));
    EXPECT_FALSE(h.machine->pred(3));
    EXPECT_TRUE(h.machine->gprNat(4)); // still NaT
}

TEST(MachineCmp, AllRelationsEvaluateCorrectly)
{
    struct Case
    {
        CmpRel rel;
        int64_t a, b;
        bool expect;
    };
    const Case cases[] = {
        {CmpRel::Eq, 5, 5, true},     {CmpRel::Ne, 5, 5, false},
        {CmpRel::Lt, -1, 1, true},    {CmpRel::Le, 1, 1, true},
        {CmpRel::Gt, 2, 1, true},     {CmpRel::Ge, 0, 1, false},
        {CmpRel::LtU, ~0LL, 1, false},{CmpRel::LeU, 0, 0, true},
        {CmpRel::GtU, ~0LL, 1, true}, {CmpRel::GeU, 1, 2, false},
    };
    for (const Case &c : cases) {
        std::vector<Instr> code;
        code.push_back(makeMovi(4, c.a));
        code.push_back(makeMovi(5, c.b));
        code.push_back(makeCmp(c.rel, 2, 3, 4, 5));
        RunHarness h(code);
        h.run();
        EXPECT_EQ(h.machine->pred(2), c.expect) << cmpRelName(c.rel);
        EXPECT_EQ(h.machine->pred(3), !c.expect) << cmpRelName(c.rel);
    }
}

TEST(MachinePred, FalsePredicateNullifies)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 1));
    code.push_back(makeCmpImm(CmpRel::Eq, 2, 3, 4, 99)); // p2=0, p3=1
    Instr blocked = makeMovi(5, 111);
    blocked.qp = 2;
    code.push_back(blocked);
    Instr executed = makeMovi(6, 222);
    executed.qp = 3;
    code.push_back(executed);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.machine->gprVal(5), 0u);
    EXPECT_EQ(h.machine->gprVal(6), 222u);
}

TEST(MachinePred, PredicateZeroIsHardwiredTrue)
{
    std::vector<Instr> code;
    code.push_back(makeCmpImm(CmpRel::Eq, 0, 0, 0, 1)); // tries to
                                                        // clear p0
    Instr mv = makeMovi(4, 7);
    mv.qp = 0;
    code.push_back(mv);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.machine->gprVal(4), 7u);
}

// ---------------------------------------------------------------------
// Spill / fill and UNAT.
// ---------------------------------------------------------------------

TEST(MachineSpill, SpillFillPreservesNatThroughMemory)
{
    auto code = natInR4(); // r4 NaT, value 0
    code.push_back(makeMovi(5, 0));
    // Use the stack pointer for a scratch slot.
    code.push_back(makeAluImm(Opcode::Add, 5, reg::sp, -32));
    Instr spill = makeSt(5, 4, 8);
    spill.spill = true;
    code.push_back(spill);
    Instr fill = makeLd(6, 5, 8);
    fill.fill = true;
    code.push_back(fill);
    code.push_back(makeLd(7, 5, 8)); // plain load: NO NaT restored
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited) << faultKindName(h.result.fault.kind);
    EXPECT_TRUE(h.machine->gprNat(6));
    EXPECT_FALSE(h.machine->gprNat(7));
}

TEST(MachineSpill, SpillUpdatesUnat)
{
    auto code = natInR4();
    code.push_back(makeAluImm(Opcode::Add, 5, reg::sp, -32));
    Instr spill = makeSt(5, 4, 8);
    spill.spill = true;
    code.push_back(spill);
    RunHarness h(code);
    h.run();
    ASSERT_TRUE(h.result.exited);
    uint64_t slotAddr = h.machine->gprVal(5);
    unsigned bitIdx = unsigned((slotAddr >> 3) & 63);
    EXPECT_TRUE((h.machine->unat() >> bitIdx) & 1);
}

TEST(MachineSpill, UnatReadWrite)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 0xABCD));
    Instr toUnat;
    toUnat.op = Opcode::MovToUnat;
    toUnat.r2 = 4;
    code.push_back(toUnat);
    Instr fromUnat;
    fromUnat.op = Opcode::MovFromUnat;
    fromUnat.r1 = 5;
    code.push_back(fromUnat);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.machine->gprVal(5), 0xABCDu);
}

// ---------------------------------------------------------------------
// chk.s, branches, calls.
// ---------------------------------------------------------------------

TEST(MachineChk, ChkBranchesOnNatOnly)
{
    // With a clean register chk.s falls through; with NaT it jumps to
    // the recovery label.
    for (bool tainted : {false, true}) {
        std::vector<Instr> code;
        if (tainted) {
            auto pre = natInR4();
            code.insert(code.end(), pre.begin(), pre.end());
        } else {
            code.push_back(makeMovi(4, 0));
        }
        Instr chk;
        chk.op = Opcode::Chk;
        chk.r2 = 4;
        chk.imm = 1; // recovery label
        code.push_back(chk);
        code.push_back(makeMovi(5, 100)); // fallthrough path
        code.push_back(makeBr(2));
        code.push_back(makeLabel(1));
        code.push_back(makeMovi(5, 200)); // recovery path
        code.push_back(makeLabel(2));
        RunHarness h(code);
        h.run();
        EXPECT_EQ(h.machine->gprVal(5), tainted ? 200u : 100u);
    }
}

TEST(MachineCalls, IndirectCallThroughDescriptor)
{
    Program program;
    Function callee;
    callee.name = "callee";
    callee.code.push_back(makeMovi(reg::rv, 55));
    Instr ret;
    ret.op = Opcode::BrRet;
    callee.code.push_back(ret);
    program.addFunction(std::move(callee));

    Function fn;
    fn.name = "main";
    fn.code.push_back(makeMovi(4, int64_t(funcDescAddr(0))));
    Instr toBr;
    toBr.op = Opcode::MovToBr;
    toBr.br = 6;
    toBr.r2 = 4;
    fn.code.push_back(toBr);
    Instr call;
    call.op = Opcode::BrCalli;
    call.br = 6;
    fn.code.push_back(call);
    fn.code.push_back(ret);
    program.addFunction(std::move(fn));
    program.entry = "main";

    Machine machine(program);
    RunResult r = machine.run(1000);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 55);
}

TEST(MachineCalls, IndirectCallToGarbageFaults)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 0xDEAD));
    Instr toBr;
    toBr.op = Opcode::MovToBr;
    toBr.br = 6;
    toBr.r2 = 4;
    code.push_back(toBr);
    Instr call;
    call.op = Opcode::BrCalli;
    call.br = 6;
    code.push_back(call);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.fault.kind, FaultKind::BadIndirect);
}

// ---------------------------------------------------------------------
// Enhancement instructions and feature gating.
// ---------------------------------------------------------------------

TEST(MachineEnh, SetnatClrnatPreserveValue)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(4, 77));
    Instr set;
    set.op = Opcode::Setnat;
    set.r1 = 4;
    code.push_back(set);
    code.push_back(makeMov(5, 4)); // NaT flows with the copy
    Instr clr;
    clr.op = Opcode::Clrnat;
    clr.r1 = 4;
    code.push_back(clr);
    CpuFeatures features;
    features.natSetClear = true;
    RunHarness h(code, features);
    h.run();
    ASSERT_TRUE(h.result.exited);
    EXPECT_FALSE(h.machine->gprNat(4));
    EXPECT_EQ(h.machine->gprVal(4), 77u);
    EXPECT_TRUE(h.machine->gprNat(5));
    EXPECT_EQ(h.machine->gprVal(5), 77u);
}

TEST(MachineEnh, SetnatRequiresFeature)
{
    std::vector<Instr> code;
    Instr set;
    set.op = Opcode::Setnat;
    set.r1 = 4;
    code.push_back(set);
    RunHarness h(code);
    h.run();
    EXPECT_TRUE(bool(h.result.fault));
}

// ---------------------------------------------------------------------
// Accounting.
// ---------------------------------------------------------------------

TEST(MachineStats, ProvenanceBucketsAreCharged)
{
    std::vector<Instr> code;
    Instr tagged = makeMovi(4, 1);
    tagged.prov = Provenance::TagAddr;
    tagged.origClass = OrigClass::ForLoad;
    code.push_back(tagged);
    Instr orig = makeMovi(5, 2);
    code.push_back(orig);
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.result.stats.get("engine.instrs.tagaddr.load"), 1u);
    EXPECT_GE(h.result.stats.get("engine.instrs.original"), 1u);
    EXPECT_GT(h.result.stats.get("engine.cycles.total"), 0u);
    EXPECT_EQ(h.result.instructions, 3u); // 2 movi + ret
}

TEST(MachineStats, ZeroRegisterIsImmutable)
{
    std::vector<Instr> code;
    code.push_back(makeMovi(0, 99));
    code.push_back(makeAluImm(Opcode::Add, 4, 0, 5));
    RunHarness h(code);
    h.run();
    EXPECT_EQ(h.machine->gprVal(0), 0u);
    EXPECT_EQ(h.machine->gprVal(4), 5u);
}

} // namespace
} // namespace shift
