/**
 * @file
 * Instrumentation-pass tests: the exact shapes of the figure-5
 * sequences, option toggles (granularity, enhancements, relax rules),
 * the zero-idiom purifier, and static accounting.
 */

#include <gtest/gtest.h>

#include "core/instrument.hh"
#include "lang/compiler.hh"
#include "support/logging.hh"

namespace shift
{
namespace
{

/** Compile a tiny module (no main needed) and instrument it. */
Program
instrumented(const std::string &source, const InstrumentOptions &options,
             InstrumentStats *stats = nullptr)
{
    minic::CompileOptions copts;
    copts.requireMain = false;
    Program program = minic::compileProgram(source, copts);
    InstrumentStats st = instrumentProgram(program, options);
    if (stats)
        *stats = st;
    return program;
}

/** Count instructions of one opcode in a function. */
int
countOp(const Function &fn, Opcode op)
{
    int n = 0;
    for (const Instr &instr : fn.code) {
        if (instr.op == op)
            ++n;
    }
    return n;
}

int
countProv(const Function &fn, Provenance prov)
{
    int n = 0;
    for (const Instr &instr : fn.code) {
        if (instr.prov == prov && instr.op != Opcode::Label)
            ++n;
    }
    return n;
}

const char *kOneLoad =
    "long g; long f(long *p) { return *p; }";
const char *kOneStore =
    "long g; void f(long *p, long v) { *p = v; }";
const char *kOneIntStore =
    "int g; void f(int *p, int v) { *p = v; }";
const char *kOneCompare =
    "int f(long a, long b) { if (a < b) return 1; return 0; }";

TEST(Instrument, LoadSequenceShape)
{
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        InstrumentOptions options;
        options.granularity = g;
        Program program = instrumented(kOneLoad, options);
        const Function &fn =
            program.functions[*program.findFunction("f")];

        // Tag-address computation: the figure-4 fold appears.
        EXPECT_GE(countOp(fn, Opcode::Extr), 2);
        // Bitmap access: byte granularity reads two tag bytes
        // (alignment-safe), word granularity one.
        int tagLoads = 0;
        for (const Instr &instr : fn.code) {
            if (instr.op == Opcode::Ld &&
                instr.prov == Provenance::TagMem)
                ++tagLoads;
        }
        EXPECT_EQ(tagLoads, g == Granularity::Byte ? 2 : 1);
        // The conditional re-taint rides on the tag predicate.
        bool hasRetaint = false;
        for (const Instr &instr : fn.code) {
            if (instr.op == Opcode::Add && instr.qp != 0 &&
                instr.r3 == reg::natSrc &&
                instr.prov == Provenance::TagReg)
                hasRetaint = true;
        }
        EXPECT_TRUE(hasRetaint);
    }
}

TEST(Instrument, StoreBecomesSpillForm)
{
    InstrumentOptions options;
    Program program = instrumented(kOneStore, options);
    const Function &fn = program.functions[*program.findFunction("f")];
    // The original 8-byte store is converted to st8.spill so a NaT
    // source does not fault (figure 5, instruction 8)...
    bool originalIsSpill = false;
    for (const Instr &instr : fn.code) {
        if (instr.op == Opcode::St &&
            instr.prov == Provenance::Original && instr.size == 8)
            originalIsSpill = instr.spill;
    }
    EXPECT_TRUE(originalIsSpill);
    // ...and the source-register test uses tnat.
    EXPECT_GE(countOp(fn, Opcode::Tnat), 1);
}

TEST(Instrument, SubWordStoreGetsRelaxCode)
{
    // There is no st4.spill on Itanium: narrow stores of possibly-NaT
    // sources need the strip/re-taint relax sequence.
    InstrumentOptions options;
    Program program = instrumented(kOneIntStore, options);
    const Function &fn = program.functions[*program.findFunction("f")];
    EXPECT_GT(countProv(fn, Provenance::Relax), 0);
    // The original st4 stays a plain store (only the allocator's own
    // 8-byte register saves use the spill form).
    for (const Instr &instr : fn.code) {
        if (instr.op == Opcode::St &&
            instr.prov == Provenance::Original && instr.size < 8) {
            EXPECT_FALSE(instr.spill);
        }
    }
}

TEST(Instrument, CompareRelaxation)
{
    InstrumentOptions options;
    InstrumentStats stats;
    Program program = instrumented(kOneCompare, options, &stats);
    const Function &fn = program.functions[*program.findFunction("f")];
    EXPECT_EQ(stats.compares, 1u);
    // Strip-NaT uses spill + plain reload around the compare.
    EXPECT_GT(countProv(fn, Provenance::Relax), 0);
    int spills = 0;
    for (const Instr &instr : fn.code) {
        if (instr.op == Opcode::St && instr.spill &&
            instr.prov == Provenance::Relax)
            ++spills;
    }
    EXPECT_EQ(spills, 2); // both operands stripped
}

TEST(Instrument, NatAwareCompareReplacesRelaxation)
{
    InstrumentOptions options;
    options.natAwareCompare = true;
    Program program = instrumented(kOneCompare, options);
    const Function &fn = program.functions[*program.findFunction("f")];
    EXPECT_EQ(countOp(fn, Opcode::CmpNat), 1);
    EXPECT_EQ(countOp(fn, Opcode::Cmp), 0);
    EXPECT_EQ(countProv(fn, Provenance::Relax), 0);
}

TEST(Instrument, SetClearNatShortensStripSequences)
{
    InstrumentOptions plain;
    InstrumentStats plainStats;
    instrumented(kOneCompare, plain, &plainStats);

    InstrumentOptions enhanced;
    enhanced.natSetClear = true;
    InstrumentStats enhancedStats;
    Program program = instrumented(kOneCompare, enhanced,
                                   &enhancedStats);
    EXPECT_LT(enhancedStats.newSize, plainStats.newSize);
    const Function &fn = program.functions[*program.findFunction("f")];
    EXPECT_GE(countOp(fn, Opcode::Clrnat), 2);
}

TEST(Instrument, EntryGetsNatSourceInit)
{
    InstrumentOptions options;
    Program program = instrumented(
        "int main() { return 0; } int other() { return 1; }", options);
    const Function &entry =
        program.functions[*program.findFunction("main")];
    EXPECT_GT(countProv(entry, Provenance::NatGen), 0);
    // The manufacture uses a speculative load from the invalid address.
    bool specLoad = false;
    for (const Instr &instr : entry.code) {
        if (instr.op == Opcode::Ld && instr.spec &&
            instr.prov == Provenance::NatGen)
            specLoad = true;
    }
    EXPECT_TRUE(specLoad);
    const Function &other =
        program.functions[*program.findFunction("other")];
    EXPECT_EQ(countProv(other, Provenance::NatGen), 0);
}

TEST(Instrument, SpillTrafficIsNotInstrumented)
{
    // Register-allocator spill/fill already preserves NaT; the pass
    // must leave it alone. Force spills with many live values.
    std::string src = "int f() {";
    for (int i = 0; i < 24; ++i)
        src += "int v" + std::to_string(i) + " = " + std::to_string(i) +
               ";";
    src += "int s = 0;";
    for (int i = 0; i < 24; ++i)
        src += "s += v" + std::to_string(i) + ";";
    src += "return s; }";

    InstrumentOptions options;
    Program program = instrumented(src, options);
    const Function &fn = program.functions[*program.findFunction("f")];
    for (size_t i = 0; i < fn.code.size(); ++i) {
        const Instr &instr = fn.code[i];
        if (instr.op == Opcode::Ld && instr.fill) {
            // No tag lookup may precede a fill: the instruction before
            // it must be the address computation, not tagmem code.
            ASSERT_GT(i, 0u);
            EXPECT_NE(fn.code[i - 1].prov, Provenance::TagMem);
        }
    }
}

TEST(Instrument, ZeroIdiomPurifies)
{
    // Build xor r,r,r by hand (the compiler never emits it).
    Program program;
    Function fn;
    fn.name = "main";
    fn.code.push_back(makeAlu(Opcode::Xor, 4, 4, 4));
    Instr ret;
    ret.op = Opcode::BrRet;
    fn.code.push_back(ret);
    program.addFunction(std::move(fn));

    InstrumentOptions options;
    InstrumentStats stats = instrumentProgram(program, options);
    EXPECT_EQ(stats.purifies, 1u);
    // Purify code follows the idiom.
    const Function &out = program.functions[0];
    EXPECT_GT(countProv(out, Provenance::TagReg), 0);
}

TEST(Instrument, RelaxRulesSuppressAddressFaultPath)
{
    InstrumentOptions options;
    options.relaxLoadFunctions = {"f"};
    Program program = instrumented(kOneLoad, options);
    const Function &fn = program.functions[*program.findFunction("f")];
    // The relaxed load path carries Relax-provenance strip/restore.
    EXPECT_GT(countProv(fn, Provenance::Relax), 0);

    InstrumentOptions off;
    Program program2 = instrumented(kOneLoad, off);
    const Function &fn2 =
        program2.functions[*program2.findFunction("f")];
    EXPECT_EQ(countProv(fn2, Provenance::Relax), 0);
}

TEST(Instrument, AblationTogglesDropWork)
{
    InstrumentOptions all;
    InstrumentStats allStats;
    instrumented(kOneLoad, all, &allStats);
    EXPECT_EQ(allStats.loads, 1u);

    InstrumentOptions noLoads;
    noLoads.instrumentLoads = false;
    InstrumentStats noLoadStats;
    instrumented(kOneLoad, noLoads, &noLoadStats);
    EXPECT_EQ(noLoadStats.loads, 0u);
    EXPECT_LT(noLoadStats.newSize, allStats.newSize);
}

TEST(Instrument, StatsAccounting)
{
    InstrumentOptions options;
    InstrumentStats stats;
    instrumented("int g[4];"
                 "int f(int i) { g[0] = i; if (g[1] > 2) return g[2];"
                 " return 0; }",
                 options, &stats);
    EXPECT_GE(stats.loads, 2u);
    EXPECT_GE(stats.stores, 1u);
    EXPECT_GE(stats.compares, 1u);
    EXPECT_EQ(stats.newSize, stats.originalSize + stats.added);
}

TEST(Instrument, TagAddressReuseShrinksAdjacentAccesses)
{
    // A read-modify-write through one pointer: the store can reuse the
    // load's tag-address fold (paper section 6.4).
    const char *src = "void f(long *p) { *p = *p + 1; }";
    InstrumentOptions plain;
    plain.reuseTagAddr = false;
    InstrumentStats plainStats;
    instrumented(src, plain, &plainStats);

    InstrumentOptions cse;
    cse.reuseTagAddr = true;
    InstrumentStats cseStats;
    instrumented(src, cse, &cseStats);

    EXPECT_LT(cseStats.newSize, plainStats.newSize);
    // Exactly one 4-instruction fold is saved.
    EXPECT_EQ(plainStats.newSize - cseStats.newSize, 4u);
}

TEST(Instrument, TagAddressReuseInvalidatedByRedefinition)
{
    // The pointer is rewritten between the accesses: no reuse allowed.
    const char *src =
        "void f(long *p, long *q) { *p = 1; p = q; *p = 2; }";
    InstrumentOptions plain;
    plain.reuseTagAddr = false;
    InstrumentStats plainStats;
    instrumented(src, plain, &plainStats);
    InstrumentOptions cse;
    cse.reuseTagAddr = true;
    InstrumentStats cseStats;
    instrumented(src, cse, &cseStats);
    EXPECT_EQ(cseStats.newSize, plainStats.newSize);
}

TEST(Instrument, TagAddressReuseInvalidatedByScratchClobber)
{
    // Hand-written assembly may legally write the instrumenter's kT0
    // scratch (r27) between two accesses through the same pointer; a
    // stale cached fold would then address the wrong bitmap byte. The
    // cache must drop on a redefinition of the scratch itself, not
    // only of the address register.
    auto build = [](bool clobber) {
        Program program;
        Function fn;
        fn.name = "f";
        fn.code.push_back(makeSt(4, 5, 8));
        if (clobber)
            fn.code.push_back(makeMovi(reg::shiftTmp0, 99));
        fn.code.push_back(makeSt(4, 6, 8));
        Instr ret;
        ret.op = Opcode::BrRet;
        fn.code.push_back(ret);
        program.addFunction(std::move(fn));
        return program;
    };
    InstrumentOptions options;
    options.reuseTagAddr = true;

    Program reused = build(false);
    instrumentProgram(reused, options);
    Program clobbered = build(true);
    instrumentProgram(clobbered, options);

    // One fold carries two extr.u; the clobbered variant needs two
    // folds, the clean one reuses the first.
    EXPECT_EQ(countOp(reused.functions[0], Opcode::Extr), 2);
    EXPECT_EQ(countOp(clobbered.functions[0], Opcode::Extr), 4);
}

TEST(Instrument, RejectsVirtualRegisters)
{
    Program program;
    Function fn;
    fn.name = "main";
    fn.code.push_back(makeMovi(200, 1)); // virtual register
    program.addFunction(std::move(fn));
    InstrumentOptions options;
    EXPECT_THROW(instrumentProgram(program, options), FatalError);
}

TEST(Instrument, Idempotence)
{
    // Instrumenting an already-instrumented program only touches
    // Original instructions, so a second pass re-instruments only the
    // original loads/stores/compares, not the synthesized ones.
    InstrumentOptions options;
    InstrumentStats first;
    Program program = instrumented(kOneLoad, options, &first);
    InstrumentStats second = instrumentProgram(program, options);
    EXPECT_EQ(second.loads, first.loads);
    EXPECT_EQ(second.compares, first.compares);
}

} // namespace
} // namespace shift
