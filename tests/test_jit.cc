/**
 * @file
 * JIT tier unit tests: the copy-and-patch host-code compiler for hot
 * superblocks (src/jit, docs/JIT.md).
 *
 * This binary covers the tier's machinery — promotion, the deopt
 * protocol's edge cases, the code-cache byte budget, stats merge and
 * fleet sharing. The broad workload differentials (SPEC, httpd, the
 * attack suite) live in test_jit_diff.cc; both use the exact-equality
 * harness in jit_test_util.hh.
 *
 * Every behavioural test skips on hosts/builds where the backend is
 * unavailable (non-x86-64, -DSHIFT_ENABLE_JIT=OFF); the no-op and
 * merge tests run everywhere.
 */

#include <gtest/gtest.h>

#include <string>

#include "jit_test_util.hh"
#include "runtime/session_template.hh"
#include "session_helpers.hh"
#include "svc/fleet.hh"
#include "workloads/httpd.hh"

namespace shift
{
namespace
{

using jittest::captureRun;
using jittest::DiffRun;
using jittest::expectIdentical;
using jittest::kCleanSource;
using jittest::kEager;
using workloads::httpdSessionOptions;
using workloads::kHttpdRequest;
using workloads::kHttpdSource;
using workloads::provisionHttpdOs;

// ---------------------------------------------------------------------
// Smoke: the tier compiles, executes, and changes nothing observable.
// ---------------------------------------------------------------------

TEST(JitTier, OffByDefaultCountsAreZero)
{
    Session session(kCleanSource,
                    testutil::shiftOptions(Granularity::Byte));
    RunResult result = session.run();
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(session.machine().jitCompiled(), 0u);
    EXPECT_EQ(session.machine().jitEntered(), 0u);
    EXPECT_EQ(result.stats.get("jit.compiled"), 0u);
    EXPECT_EQ(result.stats.get("jit.entered"), 0u);
}

TEST(JitTier, CompilesEntersAndMatchesInterpreter)
{
    SKIP_WITHOUT_JIT();
    DiffRun runs[2];
    uint64_t compiled = 0;
    for (bool jitOn : {false, true}) {
        SessionOptions options = testutil::shiftOptions(Granularity::Byte);
        options.jit = jitOn;
        options.jitThreshold = kEager;
        Session session(kCleanSource, options);
        runs[jitOn] = captureRun(session);
        if (jitOn)
            compiled = session.machine().jitCompiled();
    }
    EXPECT_TRUE(runs[0].result.exited);
    expectIdentical(runs[0], runs[1], "clean kernel");
    EXPECT_GT(compiled, 0u) << "threshold 1 must promote something";
    EXPECT_GT(runs[1].jitEntered, 0u) << "compiled code never ran";
    EXPECT_GT(runs[1].result.stats.get("jit.compiled"), 0u);
    EXPECT_GT(runs[1].result.stats.get("jit.entered"), 0u);
    EXPECT_GT(runs[1].result.stats.get("jit.codeBytes"), 0u)
        << "the stable schema reports the cache's live code bytes";
}

TEST(JitTier, UnavailableBackendIsASilentNoOp)
{
    if (Machine::jitAvailable())
        GTEST_SKIP() << "backend present: no-op path not reachable";
    SessionOptions options = testutil::shiftOptions(Granularity::Byte);
    options.jit = true;
    options.jitThreshold = kEager;
    Session session(kCleanSource, options);
    RunResult result = session.run();
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(session.machine().jitEntered(), 0u);
    EXPECT_EQ(result.stats.get("jit.entered"), 0u);
}

TEST(JitTier, StepLimitStopsAtTheSameInstruction)
{
    SKIP_WITHOUT_JIT();
    // A budget that lands mid-run exercises the compiled blocks'
    // up-front budget debit and the refund stubs: the jit-on run must
    // stop having retired exactly as many instructions.
    DiffRun runs[2];
    for (bool jitOn : {false, true}) {
        SessionOptions options = testutil::shiftOptions(Granularity::Byte);
        options.maxSteps = 5000;
        options.jit = jitOn;
        options.jitThreshold = kEager;
        Session session(kCleanSource, options);
        runs[jitOn] = captureRun(session);
    }
    EXPECT_FALSE(runs[0].result.exited)
        << "budget chosen to stop mid-run";
    expectIdentical(runs[0], runs[1], "step-limited");
}

// ---------------------------------------------------------------------
// Deopt protocol edge cases (docs/FAST-PATH.md state map, compiled).
// ---------------------------------------------------------------------

DiffRun
runTainted(const std::string &source, bool jitOn,
           const std::string &input)
{
    SessionOptions options = testutil::shiftOptions(Granularity::Byte);
    options.fastPath = true;
    options.jit = jitOn;
    options.jitThreshold = kEager;
    Session session(source, options);
    session.os().addFile("input.dat", input);
    return captureRun(session);
}

/**
 * The loop body's FIRST fused group is the tainted load: its probe
 * fails on block entry, so the compiled block deopts having retired
 * nothing — exercising the refund of the entire up-front budget debit
 * and the state map at the block's first instruction.
 */
TEST(JitDeopt, AtTheFirstFusedGroup)
{
    SKIP_WITHOUT_JIT();
    const char *src =
        "char buf[256];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  int n = read(fd, buf, 64);\n"
        "  close(fd);\n"
        "  long sum = 0;\n"
        "  for (int i = 0; i < n; i++) sum += buf[i];\n"
        "  return (int)(sum & 127);\n"
        "}\n";
    DiffRun off = runTainted(src, false, std::string(48, 'a'));
    DiffRun on = runTainted(src, true, std::string(48, 'a'));
    EXPECT_TRUE(off.result.exited) << off.result.fault.detail;
    EXPECT_GT(off.result.stats.get("fastpath.deopts"), 0u);
    expectIdentical(off, on, "deopt at first group");
    EXPECT_GT(on.jitDeopts, 0u)
        << "the deopt must be taken from inside compiled code";
}

/**
 * The loop body loads only clean globals; its LAST fused group is a
 * store into a tag line dirtied by earlier tainted input. The store
 * probe fails after every prior group already executed — the deopt
 * resumes the interpreter at the block's final instruction with all
 * earlier charges already folded.
 */
TEST(JitDeopt, AtTheLastFusedGroup)
{
    SKIP_WITHOUT_JIT();
    const char *src =
        "char buf[256];\n"
        "char src[256];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  int n = read(fd, buf, 32);\n"
        "  close(fd);\n"
        "  long sum = 0;\n"
        "  for (int i = 0; i < 32; i++) {\n"
        "    sum += src[i];\n"   // clean load first
        "    buf[i] = (char)i;\n" // store into the dirtied tag line last
        "  }\n"
        "  return (int)((sum + n) & 127);\n"
        "}\n";
    DiffRun off = runTainted(src, false, std::string(32, 'b'));
    DiffRun on = runTainted(src, true, std::string(32, 'b'));
    EXPECT_TRUE(off.result.exited) << off.result.fault.detail;
    EXPECT_GT(off.result.stats.get("fastpath.deopts"), 0u);
    expectIdentical(off, on, "deopt at last group");
    EXPECT_GT(on.jitDeopts, 0u);
}

/**
 * The deopting block is the else-arm of a conditional inside the
 * loop: compiled code reaches it through a block-to-block chained
 * jump (loop head -> compare -> branch), not through the function's
 * JIT entry point. The deopt's interpreter resume pc is therefore a
 * pc the dispatcher never saw this entry.
 */
TEST(JitDeopt, InsideABlockEnteredViaChainedJump)
{
    SKIP_WITHOUT_JIT();
    const char *src =
        "char buf[256];\n"
        "char clean[256];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  int n = read(fd, buf, 64);\n"
        "  close(fd);\n"
        "  long sum = 0;\n"
        "  for (int i = 0; i < 64; i++) {\n"
        "    if (i & 1) sum += clean[i];\n"
        "    else sum += buf[i];\n"
        "  }\n"
        "  return (int)((sum + n) & 127);\n"
        "}\n";
    DiffRun off = runTainted(src, false, std::string(64, 'c'));
    DiffRun on = runTainted(src, true, std::string(64, 'c'));
    EXPECT_TRUE(off.result.exited) << off.result.fault.detail;
    EXPECT_GT(off.result.stats.get("fastpath.deopts"), 0u);
    expectIdentical(off, on, "deopt via chained jump");
    EXPECT_GT(on.jitDeopts, 0u);
}

/**
 * Cold demotion: a block that deopts every time it is entered crosses
 * kFpColdDeopts and is demoted — after which compiled chain jumps
 * must take the cold-bail edge to the slow stream exactly as the
 * interpreter's coldHead() does. Every fastpath.* counter (enters,
 * deopts, coldBails) must agree bit-for-bit.
 */
TEST(JitDeopt, ColdDemotionAgreesWithInterpreter)
{
    SKIP_WITHOUT_JIT();
    const char *src =
        "char buf[4096];\n"
        "int main() {\n"
        "  int fd = open(\"input.dat\", 0);\n"
        "  int n = read(fd, buf, 4096);\n"
        "  close(fd);\n"
        "  long sum = 0;\n"
        "  for (int r = 0; r < 8; r++)\n"
        "    for (int i = 0; i < n; i++) sum += buf[i];\n"
        "  return (int)(sum & 127);\n"
        "}\n";
    std::string input(4096, 'd');
    DiffRun off = runTainted(src, false, input);
    DiffRun on = runTainted(src, true, input);
    EXPECT_TRUE(off.result.exited) << off.result.fault.detail;
    EXPECT_GE(off.result.stats.get("fastpath.deopts"), 8u)
        << "every pass over tainted data must deopt until demotion";
    EXPECT_GT(off.result.stats.get("fastpath.coldBails"), 0u)
        << "the hot loop must get demoted";
    expectIdentical(off, on, "cold demotion");
}

/**
 * Deopt sweep: one loop block whose body carries four elided fused
 * groups (four distinct arrays), with the tainted array — and so the
 * failing probe's pc — moved across every group position in turn.
 * Together with the first/last/chained cases above this exercises the
 * mid-block state map at every elided-group pc the block has.
 */
TEST(JitDeopt, SweepAcrossEveryElidedGroupPc)
{
    SKIP_WITHOUT_JIT();
    const char *arrays[4] = {"a0", "a1", "a2", "a3"};
    for (int tainted = 0; tainted < 4; ++tainted) {
        std::string src =
            "char a0[64];\nchar a1[64];\nchar a2[64];\nchar a3[64];\n"
            "int main() {\n"
            "  int fd = open(\"input.dat\", 0);\n"
            "  int n = read(fd, " +
            std::string(arrays[tainted]) +
            ", 64);\n"
            "  close(fd);\n"
            "  long sum = 0;\n"
            "  for (int i = 0; i < 64; i++) {\n"
            "    sum += a0[i];\n"
            "    sum += a1[i];\n"
            "    sum += a2[i];\n"
            "    sum += a3[i];\n"
            "  }\n"
            "  return (int)((sum + n) & 127);\n"
            "}\n";
        std::string what =
            std::string("deopt sweep: tainted ") + arrays[tainted];
        DiffRun off = runTainted(src, false, std::string(64, 'e'));
        DiffRun on = runTainted(src, true, std::string(64, 'e'));
        EXPECT_TRUE(off.result.exited)
            << what << ": " << off.result.fault.detail;
        EXPECT_GT(off.result.stats.get("fastpath.deopts"), 0u) << what;
        expectIdentical(off, on, what);
        EXPECT_GT(on.jitDeopts, 0u) << what;
    }
}

// ---------------------------------------------------------------------
// Code-cache byte budget: flush-when-full eviction (docs/JIT.md).
// ---------------------------------------------------------------------

/**
 * A budget a fraction of one compiled function forces a flush on
 * nearly every publication: functions keep evicting each other and
 * re-crossing the (eager) threshold. Execution must be unchanged —
 * eviction only unpublishes buffers, it never invalidates running
 * code or simulated state — and the eviction counter must surface in
 * the stable schema.
 */
TEST(JitCache, EvictionUnderATinyBudgetStaysCorrect)
{
    SKIP_WITHOUT_JIT();
    std::string src;
    for (int f = 0; f < 6; ++f) {
        std::string n = std::to_string(f);
        src += "int f" + n + "(int x) { int s = 0;"
               " for (int i = 0; i < x; i++) s += i + " + n + ";"
               " return s; }\n";
    }
    src += "int main() {\n  int s = 0;\n"
           "  for (int r = 0; r < 4; r++) {\n";
    for (int f = 0; f < 6; ++f)
        src += "    s += f" + std::to_string(f) + "(50);\n";
    src += "  }\n  return s & 127;\n}\n";

    DiffRun runs[2];
    uint64_t evictions = 0;
    for (bool jitOn : {false, true}) {
        SessionOptions options =
            testutil::shiftOptions(Granularity::Byte);
        options.jit = jitOn;
        options.jitThreshold = kEager;
        options.jitCacheBytes = 2048;
        Session session(src, options);
        runs[jitOn] = captureRun(session);
        if (jitOn)
            evictions = session.machine().jitEvictions();
    }
    EXPECT_TRUE(runs[0].result.exited) << runs[0].result.fault.detail;
    expectIdentical(runs[0], runs[1], "tiny code cache");
    EXPECT_GT(evictions, 0u)
        << "six hot functions cannot fit a 2 KiB budget";
    EXPECT_GT(runs[1].result.stats.get("jit.evictions"), 0u);
    EXPECT_GT(runs[1].jitEntered, 0u)
        << "churn must not stop compiled code from running";
}

// ---------------------------------------------------------------------
// Background compilation and lazy per-block tiers: same simulation,
// different compile placement (docs/JIT.md).
// ---------------------------------------------------------------------

/**
 * Background mode moves compilation onto a worker thread; the serving
 * thread's simulated run must be bit-identical whether or not the
 * worker manages to install anything before the run ends. The queue
 * high-water gauge surfaces in the stable schema once a request has
 * been enqueued.
 */
TEST(JitBackground, CompilesOffThreadAndMatchesInterpreter)
{
    SKIP_WITHOUT_JIT();
    DiffRun runs[2];
    uint64_t queueDepth = 0;
    for (bool jitOn : {false, true}) {
        SessionOptions options = testutil::shiftOptions(Granularity::Byte);
        options.jit = jitOn;
        options.jitThreshold = kEager;
        options.jitBackground = jitOn;
        Session session(kCleanSource, options);
        runs[jitOn] = captureRun(session);
        if (jitOn)
            queueDepth =
                runs[jitOn].result.stats.gauge("jit.compileQueueDepth");
    }
    EXPECT_TRUE(runs[0].result.exited);
    expectIdentical(runs[0], runs[1], "background compile");
    EXPECT_GE(queueDepth, 1u)
        << "the hot function must have crossed the threshold and been "
           "queued for the worker";
}

/**
 * Lazy mode compiles one dual-version superblock per hot entry rather
 * than whole functions, so a run that only touches part of a function
 * compiles fewer blocks than whole-function mode while simulating
 * identically.
 */
TEST(JitLazy, PerBlockCompilationMatchesInterpreter)
{
    SKIP_WITHOUT_JIT();
    DiffRun runs[2];
    uint64_t lazyCompiled = 0;
    for (bool jitOn : {false, true}) {
        SessionOptions options = testutil::shiftOptions(Granularity::Byte);
        options.jit = jitOn;
        options.jitThreshold = kEager;
        options.jitLazy = jitOn;
        Session session(kCleanSource, options);
        runs[jitOn] = captureRun(session);
        if (jitOn)
            lazyCompiled = session.machine().jitCompiled();
    }
    EXPECT_TRUE(runs[0].result.exited);
    expectIdentical(runs[0], runs[1], "lazy per-block");
    EXPECT_GT(lazyCompiled, 0u) << "hot entry must compile its block";
    EXPECT_GT(runs[1].jitEntered, 0u);
}

/** The full matrix point: background worker + lazy block tiers. */
TEST(JitLazy, BackgroundLazyMatchesInterpreter)
{
    SKIP_WITHOUT_JIT();
    DiffRun runs[2];
    for (bool jitOn : {false, true}) {
        SessionOptions options = testutil::shiftOptions(Granularity::Byte);
        options.jit = jitOn;
        options.jitThreshold = kEager;
        options.jitBackground = jitOn;
        options.jitLazy = jitOn;
        Session session(kCleanSource, options);
        runs[jitOn] = captureRun(session);
    }
    EXPECT_TRUE(runs[0].result.exited);
    expectIdentical(runs[0], runs[1], "background+lazy");
}

// ---------------------------------------------------------------------
// Satellite: jit.* counters through StatSet merge (fleet aggregation
// path) — merging is associative, so worker join order is irrelevant.
// ---------------------------------------------------------------------

TEST(JitStats, MergeIsAssociativeOverJitCounters)
{
    auto make = [](uint64_t compiled, uint64_t entered, uint64_t deopts,
                   uint64_t bailouts) {
        StatSet s;
        s.add("jit.compiled", compiled);
        s.add("jit.entered", entered);
        s.add("jit.deopts", deopts);
        s.add("jit.bailouts", bailouts);
        s.add("engine.instrs.total", entered * 100);
        return s;
    };
    StatSet a = make(3, 1000, 7, 2);
    StatSet b = make(0, 250, 0, 1);
    StatSet c = make(5, 0, 31, 0);

    StatSet leftFirst = a; // (a + b) + c
    leftFirst.merge(b);
    leftFirst.merge(c);
    StatSet rightFirst = b; // a + (b + c)
    rightFirst.merge(c);
    StatSet result = a;
    result.merge(rightFirst);

    EXPECT_EQ(leftFirst.dump(), result.dump());
    EXPECT_EQ(result.get("jit.compiled"), 8u);
    EXPECT_EQ(result.get("jit.entered"), 1250u);
    EXPECT_EQ(result.get("jit.deopts"), 38u);
    EXPECT_EQ(result.get("jit.bailouts"), 3u);
}

// ---------------------------------------------------------------------
// Fleet: clones share the template's compiled code read-only.
// ---------------------------------------------------------------------

TEST(JitFleet, TemplateSharesCompiledCodeAcrossClones)
{
    SKIP_WITHOUT_JIT();
    SessionOptions options = httpdSessionOptions(
        TrackingMode::Shift, Granularity::Byte, {},
        ExecEngine::Predecoded);
    options.fastPath = true;
    options.jit = true;
    options.jitThreshold = kEager;
    SessionTemplate tmpl(std::string(kHttpdSource), std::move(options));
    provisionHttpdOs(tmpl.os(), 512);

    std::vector<svc::FleetJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back({i, {kHttpdRequest}});
    svc::Fleet fleet(tmpl, {.workers = 4});
    svc::FleetReport report = fleet.serve(jobs);

    EXPECT_TRUE(report.allOk);
    EXPECT_EQ(report.requests, 8u);
    EXPECT_GT(report.jitBlocksEntered, 0u);
    EXPECT_GT(report.stats.get("jit.compiled"), 0u);
    EXPECT_EQ(report.jitBlocksEntered, report.stats.get("jit.entered"));
    EXPECT_EQ(report.jitDeopts, report.stats.get("jit.deopts"));

    // Determinism across the pool: every clone served the same
    // request, so every clone must produce the same response bytes.
    ASSERT_EQ(report.jobResults.size(), 8u);
    for (const auto &jr : report.jobResults) {
        ASSERT_EQ(jr.responses.size(), 1u);
        EXPECT_EQ(jr.responses[0], report.jobResults[0].responses[0]);
    }
}

/**
 * Concurrent install/eviction torture, sized for the TSan build: many
 * clones hammer one shared code cache while (a) the background worker
 * installs compiled buffers, (b) lazy block slots are CAS-claimed and
 * published from both the worker and the serving threads, and (c) a
 * budget a fraction of the working set forces flush-when-full
 * evictions under all of it. Any unfenced access to the slot arrays,
 * the publication lists, or the queue is a TSan report; without TSan
 * this still asserts the fleet serves correctly and deterministically
 * through the churn.
 */
TEST(JitFleet, ConcurrentBackgroundInstallAndEvictionRaces)
{
    SKIP_WITHOUT_JIT();
    SessionOptions options = httpdSessionOptions(
        TrackingMode::Shift, Granularity::Byte, {},
        ExecEngine::Predecoded);
    options.fastPath = true;
    options.jit = true;
    options.jitThreshold = kEager;
    options.jitBackground = true;
    options.jitLazy = true;
    options.jitCacheBytes = 8192; // a fraction of the hot working set
    SessionTemplate tmpl(std::string(kHttpdSource), std::move(options));
    provisionHttpdOs(tmpl.os(), 512);

    std::vector<svc::FleetJob> jobs;
    for (int i = 0; i < 16; ++i)
        jobs.push_back({i, {kHttpdRequest, kHttpdRequest}});
    svc::Fleet fleet(tmpl, {.workers = 4});
    svc::FleetReport report = fleet.serve(jobs);

    EXPECT_TRUE(report.allOk);
    EXPECT_EQ(report.requests, 32u);
    ASSERT_EQ(report.jobResults.size(), 16u);
    for (const auto &jr : report.jobResults) {
        ASSERT_EQ(jr.responses.size(), 2u);
        EXPECT_EQ(jr.responses[0], report.jobResults[0].responses[0]);
        EXPECT_EQ(jr.responses[1], jr.responses[0]);
    }
}

} // namespace
} // namespace shift
