/**
 * @file
 * Fleet determinism tests over the httpd workload: N clones forked
 * from one snapshot must produce byte-identical per-request results
 * and identical attack verdicts to N sequential single-use Sessions.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/fleet.hh"
#include "workloads/httpd.hh"

namespace shift
{
namespace
{

using workloads::HttpdFleetConfig;
using workloads::HttpdFleetRun;

/** Run one job's requests through a fresh single-use Session. */
struct SequentialResult
{
    RunResult result;
    std::vector<std::string> responses;
};

SequentialResult
runSequential(const HttpdFleetConfig &config, const svc::FleetJob &job)
{
    SessionOptions options = workloads::httpdSessionOptions(
        config.mode, config.granularity, config.features, config.engine);
    Session session(workloads::kHttpdSource, options);
    workloads::provisionHttpdOs(session.os(), config.fileSize);
    for (const std::string &request : job.requests)
        session.os().queueConnection(request);
    SequentialResult out;
    out.result = session.run();
    out.responses = session.os().responses();
    return out;
}

void
expectBitIdentical(const svc::FleetJobResult &fleet,
                   const SequentialResult &seq)
{
    EXPECT_EQ(fleet.result.exited, seq.result.exited);
    EXPECT_EQ(fleet.result.exitCode, seq.result.exitCode);
    EXPECT_EQ(fleet.result.cycles, seq.result.cycles);
    EXPECT_EQ(fleet.result.instructions, seq.result.instructions);
    EXPECT_EQ(fleet.result.killedByPolicy, seq.result.killedByPolicy);
    ASSERT_EQ(fleet.result.alerts.size(), seq.result.alerts.size());
    for (size_t a = 0; a < seq.result.alerts.size(); ++a) {
        EXPECT_EQ(fleet.result.alerts[a].policy,
                  seq.result.alerts[a].policy);
        EXPECT_EQ(fleet.result.alerts[a].pc, seq.result.alerts[a].pc);
    }
    ASSERT_EQ(fleet.responses.size(), seq.responses.size());
    for (size_t r = 0; r < seq.responses.size(); ++r)
        EXPECT_EQ(fleet.responses[r], seq.responses[r]) << "response " << r;
}

TEST(FleetHttpd, EightClonesMatchEightSequentialSessions)
{
    HttpdFleetConfig config;
    config.fileSize = 2 * 1024;
    config.jobs = 8;
    config.requestsPerJob = 2;
    config.workers = 4;

    HttpdFleetRun fleet = workloads::runHttpdFleet(config);
    EXPECT_TRUE(fleet.responsesOk);
    ASSERT_EQ(fleet.report.jobs, 8u);
    EXPECT_EQ(fleet.report.requests, 16u);
    EXPECT_EQ(fleet.report.detections, 0u);
    EXPECT_TRUE(fleet.report.allOk);

    std::vector<svc::FleetJob> jobs = workloads::httpdFleetJobs(config);
    for (size_t j = 0; j < jobs.size(); ++j) {
        SequentialResult seq = runSequential(config, jobs[j]);
        ASSERT_EQ(fleet.report.jobResults[j].id, static_cast<int>(j));
        expectBitIdentical(fleet.report.jobResults[j], seq);
    }

    // Identical jobs → identical per-clone cycles: the aggregate
    // percentiles collapse to a single value.
    EXPECT_EQ(fleet.report.p50LatencyCycles,
              fleet.report.p99LatencyCycles);
}

TEST(FleetHttpd, AttackVerdictsMatchSequential)
{
    HttpdFleetConfig config;
    config.fileSize = 1024;
    config.jobs = 6;
    config.requestsPerJob = 2;
    config.workers = 3;
    config.attackJobs = 2; // jobs 4 and 5 end with a traversal attack

    HttpdFleetRun fleet = workloads::runHttpdFleet(config);
    EXPECT_TRUE(fleet.responsesOk);
    ASSERT_EQ(fleet.report.jobs, 6u);
    EXPECT_FALSE(fleet.report.allOk); // attacked clones were killed
    EXPECT_EQ(fleet.report.detections, 2u);

    std::vector<svc::FleetJob> jobs = workloads::httpdFleetJobs(config);
    for (size_t j = 0; j < jobs.size(); ++j) {
        SequentialResult seq = runSequential(config, jobs[j]);
        expectBitIdentical(fleet.report.jobResults[j], seq);
        bool attacked = j >= 4;
        EXPECT_EQ(fleet.report.jobResults[j].result.killedByPolicy,
                  attacked);
        if (attacked) {
            ASSERT_FALSE(fleet.report.jobResults[j].result.alerts.empty());
            EXPECT_EQ(
                fleet.report.jobResults[j].result.alerts.back().policy,
                "H2");
        }
    }
}

TEST(FleetHttpd, WorkerCountDoesNotChangeResults)
{
    HttpdFleetConfig config;
    config.fileSize = 1024;
    config.jobs = 4;
    config.requestsPerJob = 2;

    config.workers = 1;
    HttpdFleetRun one = workloads::runHttpdFleet(config);
    config.workers = 4;
    HttpdFleetRun four = workloads::runHttpdFleet(config);

    ASSERT_EQ(one.report.jobs, four.report.jobs);
    for (size_t j = 0; j < one.report.jobResults.size(); ++j) {
        const svc::FleetJobResult &a = one.report.jobResults[j];
        const svc::FleetJobResult &b = four.report.jobResults[j];
        EXPECT_EQ(a.result.cycles, b.result.cycles);
        ASSERT_EQ(a.responses.size(), b.responses.size());
        for (size_t r = 0; r < a.responses.size(); ++r)
            EXPECT_EQ(a.responses[r], b.responses[r]);
    }
    EXPECT_EQ(one.report.totalSimCycles, four.report.totalSimCycles);
}

TEST(FleetHttpd, StatsAggregateAcrossClones)
{
    HttpdFleetConfig config;
    config.fileSize = 512;
    config.jobs = 3;
    config.requestsPerJob = 1;
    config.workers = 2;

    HttpdFleetRun fleet = workloads::runHttpdFleet(config);
    ASSERT_EQ(fleet.report.jobs, 3u);

    // The merged StatSet is the counter-wise sum of the per-job stats.
    StatSet expected;
    for (const svc::FleetJobResult &jr : fleet.report.jobResults)
        expected.merge(jr.result.stats);
    for (const std::string &name : expected.names()) {
        EXPECT_EQ(fleet.report.stats.get(name), expected.get(name))
            << name;
    }
    EXPECT_EQ(fleet.report.stats.names().size(), expected.names().size());
}

} // namespace
} // namespace shift
