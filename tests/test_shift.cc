/**
 * @file
 * End-to-end SHIFT tests: taint sources, hardware NaT propagation,
 * bitmap coherence, compare relaxation, low-level policy enforcement,
 * architectural enhancements and both tracking granularities.
 */

#include <functional>

#include <gtest/gtest.h>

#include "session_helpers.hh"

namespace shift
{
namespace
{

using testutil::runShift;
using testutil::shiftOptions;

/** A program that reads tainted bytes from a simulated file. */
RunResult
runWithFile(const std::string &source, const std::string &fileText,
            SessionOptions options)
{
    Session session(source, std::move(options));
    session.os().addFile("input.txt", fileText);
    return session.run();
}

class GranularityTest : public ::testing::TestWithParam<Granularity>
{
};

INSTANTIATE_TEST_SUITE_P(ByteAndWord, GranularityTest,
                         ::testing::Values(Granularity::Byte,
                                           Granularity::Word),
                         [](const auto &info) {
                             return info.param == Granularity::Byte
                                        ? "byte"
                                        : "word";
                         });

TEST_P(GranularityTest, FileInputIsTainted)
{
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[64];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 64);"
        "  return __mem_tainted(buf) + 2 * (n == 5);"
        "}",
        "hello", shiftOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 3);
}

TEST_P(GranularityTest, TaintFlowsThroughRegisters)
{
    // load tainted byte -> NaT set -> arithmetic keeps NaT ->
    // __arg_tainted observes the register NaT bit.
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int x = buf[0] + 1;"
        "  int y = x * 3;"
        "  return __arg_tainted(y);"
        "}",
        "A", shiftOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 1);
}

TEST_P(GranularityTest, TaintFlowsBackToMemory)
{
    RunResult r = runWithFile(
        "char out[8];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  out[1] = 'x';"
        "  out[0] = buf[0];"
        "  return __mem_tainted(&out[0]) * 10 + __mem_tainted(&out[1]);"
        "}",
        "A", shiftOptions(GetParam()));
    // out[0] tainted; out[1] clean at byte level, but at word level the
    // whole word shares one tag bit (the last store to the word wins,
    // which is why out[1] is written first here).
    if (GetParam() == Granularity::Byte)
        EXPECT_EXIT_CODE(r, 10);
    else
        EXPECT_EXIT_CODE(r, 11);
}

TEST_P(GranularityTest, StrcpyPropagatesTaint)
{
    // The MiniC libc is instrumented like the application: taint flows
    // through strcpy with no wrap function. The input is longer than a
    // word so the NUL terminator store (clean) lands in a different
    // tracking unit than the probed bytes at word granularity.
    RunResult r = runWithFile(
        "char dst[32];"
        "int main() {"
        "  char buf[32];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 31);"
        "  buf[n] = 0;"
        "  strcpy(dst, buf);"
        "  return __mem_tainted(&dst[0]) + __mem_tainted(&dst[4]);"
        "}",
        "helloworld!!", shiftOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 2);
}

TEST_P(GranularityTest, CleanDataStaysClean)
{
    RunResult r = runShift(
        "char dst[16];"
        "int main() {"
        "  char src[16];"
        "  strcpy(src, \"clean\");"
        "  strcpy(dst, src);"
        "  int x = dst[0] + dst[1];"
        "  return __mem_tainted(dst) + __arg_tainted(x);"
        "}",
        GetParam());
    EXPECT_EXIT_CODE(r, 0);
}

TEST_P(GranularityTest, OverwritingPurifies)
{
    // Storing clean data over tainted data clears the tag.
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int t1 = __mem_tainted(buf);"
        "  buf[0] = 'c'; buf[1] = 'c'; buf[2] = 'c'; buf[3] = 'c';"
        "  buf[4] = 'c'; buf[5] = 'c'; buf[6] = 'c'; buf[7] = 'c';"
        "  return t1 * 10 + __mem_tainted(buf);"
        "}",
        "secret!", shiftOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 10);
}

TEST_P(GranularityTest, ComparesOnTaintedDataStillWork)
{
    // Without relaxation, an Itanium compare with a NaT operand clears
    // both predicates and the branch misbehaves. The relax code must
    // keep program semantics intact AND keep the operand tainted.
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[16];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 15);"
        "  int result = 0;"
        "  if (buf[0] == 'h') result = 5;"
        "  if (buf[1] != 'x') result += 2;"
        "  if (buf[0] < buf[1]) result += 1;"
        "  return result * 10 + __arg_tainted(buf[0]);"
        "}",
        "he", shiftOptions(GetParam()));
    // 'h'=='h' (5) + 'e'!='x' (2) + 'h'<'e' false (0) = 7; still tainted.
    EXPECT_EXIT_CODE(r, 71);
}

TEST_P(GranularityTest, StrcmpOnTaintedData)
{
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[16];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 15);"
        "  buf[n] = 0;"
        "  if (strcmp(buf, \"magic\") == 0) return 42;"
        "  return 1;"
        "}",
        "magic", shiftOptions(GetParam()));
    EXPECT_EXIT_CODE(r, 42);
}

TEST_P(GranularityTest, PolicyL1TaintedLoadAddress)
{
    RunResult r = runWithFile(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0];"        // tainted index
        "  return table[idx];"       // tainted address -> L1
        "}",
        "\x05", shiftOptions(GetParam()));
    EXPECT_POLICY_KILL(r, "L1");
}

TEST_P(GranularityTest, PolicyL2TaintedStoreAddress)
{
    RunResult r = runWithFile(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0];"
        "  table[idx] = 1;"          // tainted address -> L2
        "  return 0;"
        "}",
        "\x07", shiftOptions(GetParam()));
    EXPECT_POLICY_KILL(r, "L2");
}

TEST_P(GranularityTest, PolicyL3TaintedFunctionPointer)
{
    RunResult r = runWithFile(
        "int good() { return 1; }"
        "int main() {"
        "  char buf[16];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  long fp = &good;"
        "  fp = fp + buf[0] - buf[0];" // fp now tainted, same value
        "  return fp();"              // tainted branch target -> L3
        "}",
        "A", shiftOptions(GetParam()));
    EXPECT_POLICY_KILL(r, "L3");
}

TEST_P(GranularityTest, SafeSourcesProduceNoTaint)
{
    // Same program, [sources] file = clean: no taint, no alert.
    SessionOptions options = shiftOptions(GetParam());
    options.policy.taintFile = false;
    RunResult r = runWithFile(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0] & 63;"
        "  table[idx] = 9;"
        "  return table[idx] + __mem_tainted(buf);"
        "}",
        "\x05", options);
    EXPECT_EXIT_CODE(r, 9);
}

TEST_P(GranularityTest, SprintfWrapPropagatesTaint)
{
    RunResult r = runWithFile(
        "char out[64];"
        "int main() {"
        "  char name[16];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, name, 15);"
        "  name[n] = 0;"  // NUL lands past the first word on purpose
        "  sprintf(out, \"user=%s id=%d\", name, 7);"
        "  return __mem_tainted(&out[5]) * 10 + __mem_tainted(&out[0]);"
        "}",
        "evelynsmith!", shiftOptions(GetParam()));
    if (GetParam() == Granularity::Byte)
        EXPECT_EXIT_CODE(r, 10); // "user=" clean, "eve" tainted
    else
        EXPECT_EXIT_CODE(r, 11); // word granularity over-approximates
}

TEST(ShiftEnhancements, SetClearNatBehavesIdentically)
{
    SessionOptions options = shiftOptions(Granularity::Byte);
    options.features.natSetClear = true;
    RunResult r = runWithFile(
        "char dst[32];"
        "int main() {"
        "  char buf[32];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 31);"
        "  buf[n] = 0;"
        "  strcpy(dst, buf);"
        "  if (strcmp(dst, \"abc\") == 0) return 30 + __mem_tainted(dst);"
        "  return 1;"
        "}",
        "abc", options);
    EXPECT_EXIT_CODE(r, 31);
}

TEST(ShiftEnhancements, NatAwareCompareBehavesIdentically)
{
    SessionOptions options = shiftOptions(Granularity::Byte);
    options.features.natSetClear = true;
    options.features.natAwareCompare = true;
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[32];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 31);"
        "  buf[n] = 0;"
        "  if (strcmp(buf, \"abc\") == 0) return 30 + __arg_tainted(buf[0]);"
        "  return 1;"
        "}",
        "abc", options);
    EXPECT_EXIT_CODE(r, 31);
}

TEST(ShiftEnhancements, EnhancementsReduceInstrumentedSize)
{
    const char *src =
        "int main() {"
        "  char buf[32];"
        "  int s = 0;"
        "  for (int i = 0; i < 32; i++) buf[i] = (char)i;"
        "  for (int i = 0; i < 32; i++) if (buf[i] > 3) s += buf[i];"
        "  return s & 127;"
        "}";

    auto sizeWith = [&](bool setClear, bool natCmp) {
        SessionOptions options = shiftOptions(Granularity::Byte);
        options.features.natSetClear = setClear;
        options.features.natAwareCompare = natCmp;
        Session session(src, options);
        return session.instrStats().newSize;
    };
    uint64_t base = sizeWith(false, false);
    uint64_t setClr = sizeWith(true, false);
    uint64_t both = sizeWith(true, true);
    EXPECT_LT(setClr, base);
    EXPECT_LT(both, setClr);
}

TEST(ShiftInstrumentation, UninstrumentedRunsHaveNoTaint)
{
    SessionOptions options;
    options.mode = TrackingMode::None;
    RunResult r = runWithFile(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0] & 63;"
        "  table[idx] = 3;"
        "  return table[idx];"
        "}",
        "\x09", options);
    EXPECT_EXIT_CODE(r, 3);
}

TEST(ShiftInstrumentation, CodeSizeByteExceedsWord)
{
    const char *src =
        "int main() {"
        "  int a[32]; int s = 0;"
        "  for (int i = 0; i < 32; i++) a[i] = i;"
        "  for (int i = 0; i < 32; i++) s += a[i];"
        "  return s & 255;"
        "}";
    Session byteSession(src, shiftOptions(Granularity::Byte));
    Session wordSession(src, shiftOptions(Granularity::Word));
    EXPECT_GT(byteSession.instrStats().newSize,
              byteSession.instrStats().originalSize);
    EXPECT_GE(byteSession.instrStats().newSize,
              wordSession.instrStats().newSize);
}

TEST(SoftwareDift, BaselinePropagatesAndDetects)
{
    SessionOptions options;
    options.mode = TrackingMode::SoftwareDift;
    options.policy = testutil::defaultPolicy();
    options.baseline.checkLoads = true;
    options.baseline.checkStores = true;
    RunResult r = runWithFile(
        "int table[64];"
        "int main() {"
        "  char buf[8];"
        "  int fd = open(\"input.txt\", 0);"
        "  read(fd, buf, 8);"
        "  int idx = buf[0];"
        "  return table[idx];"
        "}",
        "\x05", options);
    EXPECT_POLICY_KILL(r, "L1");
}

TEST(SoftwareDift, BaselineCleanRunWorks)
{
    SessionOptions options;
    options.mode = TrackingMode::SoftwareDift;
    options.policy = testutil::defaultPolicy();
    RunResult r = runWithFile(
        "int main() {"
        "  char buf[16];"
        "  int fd = open(\"input.txt\", 0);"
        "  int n = read(fd, buf, 15);"
        "  buf[n] = 0;"
        "  if (strcmp(buf, \"ok\") == 0) return 20 + __arg_tainted(buf[0]);"
        "  return 1;"
        "}",
        "ok", options);
    EXPECT_EXIT_CODE(r, 21);
}

TEST(SoftwareDift, BaselineCostExceedsShift)
{
    const char *src =
        "int main() {"
        "  int s = 0;"
        "  for (int i = 0; i < 1000; i++) s += i * 3 - (i >> 1);"
        "  return s & 255;"
        "}";
    SessionOptions shiftOpts = shiftOptions(Granularity::Word);
    Session shiftSession(src, shiftOpts);
    RunResult shiftRun = shiftSession.run();

    SessionOptions baseOpts;
    baseOpts.mode = TrackingMode::SoftwareDift;
    baseOpts.policy = testutil::defaultPolicy(Granularity::Word);
    Session baseSession(src, baseOpts);
    RunResult baseRun = baseSession.run();

    EXPECT_TRUE(shiftRun.exited);
    EXPECT_TRUE(baseRun.exited);
    EXPECT_EQ(shiftRun.exitCode, baseRun.exitCode);
    // Software DIFT pays for every ALU op; SHIFT rides the hardware.
    EXPECT_GT(baseRun.cycles, shiftRun.cycles);
}

} // namespace
} // namespace shift
