/**
 * @file
 * CFG and liveness analysis tests, via the assembler for readable
 * fixtures.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "lang/liveness.hh"

namespace shift
{
namespace
{

using minic::buildCfg;
using minic::Cfg;
using minic::computeLiveness;
using minic::liveAt;
using minic::Liveness;

bool
trackAll(int r)
{
    return r > 0;
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Program p = assemble(R"ASM(
        func main:
            movl r4 = 1
            add r4 = r4, 2
            mov r8 = r4
            br.ret
    )ASM");
    Cfg cfg = buildCfg(p.functions[0]);
    EXPECT_EQ(cfg.numBlocks(), 1u);
    EXPECT_TRUE(cfg.succ[0].empty());
}

TEST(Cfg, BranchesSplitBlocks)
{
    Program p = assemble(R"ASM(
        func main:
            cmp.eq p6, p7 = r4, 0
            (p6) br zero
            movl r8 = 1
            br.ret
        zero:
            movl r8 = 2
            br.ret
    )ASM");
    const Function &fn = p.functions[0];
    Cfg cfg = buildCfg(fn);
    // Block 0: cmp + conditional branch (2 successors).
    ASSERT_GE(cfg.numBlocks(), 3u);
    EXPECT_EQ(cfg.succ[0].size(), 2u);
    // Return blocks have no successors.
    for (size_t b = 0; b < cfg.numBlocks(); ++b) {
        const Instr &last = fn.code[cfg.blockEnd[b] - 1];
        if (last.op == Opcode::BrRet) {
            EXPECT_TRUE(cfg.succ[b].empty());
        }
    }
}

TEST(Cfg, LoopHasBackEdge)
{
    Program p = assemble(R"ASM(
        func main:
            movl r4 = 0
        head:
            add r4 = r4, 1
            cmp.lt p6, p7 = r4, 10
            (p6) br head
            br.ret
    )ASM");
    Cfg cfg = buildCfg(p.functions[0]);
    bool hasBackEdge = false;
    for (size_t b = 0; b < cfg.numBlocks(); ++b) {
        for (int s : cfg.succ[b]) {
            if (static_cast<size_t>(s) <= b)
                hasBackEdge = true;
        }
    }
    EXPECT_TRUE(hasBackEdge);
}

TEST(Liveness, ValueLiveAcrossLoop)
{
    Program p = assemble(R"ASM(
        func main:
            movl r4 = 0
            movl r5 = 100
        head:
            add r4 = r4, r5
            cmp.lt p6, p7 = r4, 1000
            (p6) br head
            mov r8 = r4
            br.ret
    )ASM");
    const Function &fn = p.functions[0];
    Cfg cfg = buildCfg(fn);
    Liveness live = computeLiveness(fn, cfg, trackAll);

    // r5 is live at the loop head (used each iteration)...
    size_t headIdx = 0;
    for (size_t i = 0; i < fn.code.size(); ++i) {
        if (fn.code[i].op == Opcode::Label)
            headIdx = i;
    }
    EXPECT_TRUE(liveAt(live, cfg, headIdx, 5));
    EXPECT_TRUE(liveAt(live, cfg, headIdx, 4));
    // ...but nothing is live-in at function entry.
    EXPECT_FALSE(liveAt(live, cfg, 0, 4));
}

TEST(Liveness, DeadAfterLastUse)
{
    Program p = assemble(R"ASM(
        func main:
            movl r4 = 1
            mov r5 = r4
        tail:
            mov r8 = r5
            br.ret
    )ASM");
    const Function &fn = p.functions[0];
    Cfg cfg = buildCfg(fn);
    Liveness live = computeLiveness(fn, cfg, trackAll);
    size_t tailIdx = 2; // the label
    ASSERT_EQ(fn.code[tailIdx].op, Opcode::Label);
    EXPECT_TRUE(liveAt(live, cfg, tailIdx, 5));
    EXPECT_FALSE(liveAt(live, cfg, tailIdx, 4));
}

TEST(Liveness, PredicatedDefDoesNotKill)
{
    // (p6) mov r5 = ... may not execute: the incoming r5 stays live.
    Program p = assemble(R"ASM(
        func main:
            movl r5 = 1
            cmp.eq p6, p7 = r4, 0
        merge:
            (p6) movl r5 = 2
            mov r8 = r5
            br.ret
    )ASM");
    const Function &fn = p.functions[0];
    Cfg cfg = buildCfg(fn);
    Liveness live = computeLiveness(fn, cfg, trackAll);
    size_t mergeIdx = 2;
    ASSERT_EQ(fn.code[mergeIdx].op, Opcode::Label);
    EXPECT_TRUE(liveAt(live, cfg, mergeIdx, 5));
}

TEST(Liveness, StoreUsesBothOperands)
{
    Program p = assemble(R"ASM(
        func main:
        top:
            st8 [r4] = r5
            br.ret
    )ASM");
    const Function &fn = p.functions[0];
    Cfg cfg = buildCfg(fn);
    Liveness live = computeLiveness(fn, cfg, trackAll);
    EXPECT_TRUE(liveAt(live, cfg, 0, 4));
    EXPECT_TRUE(liveAt(live, cfg, 0, 5));
}

} // namespace
} // namespace shift
