/**
 * @file
 * Support-library tests: config parsing, bit utilities, statistics.
 */

#include <gtest/gtest.h>

#include "support/bitops.hh"
#include "support/config.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace shift
{
namespace
{

TEST(Config, SectionsAndKeys)
{
    Config cfg = Config::parse(
        "# policy file\n"
        "[sources]\n"
        "network = taint\n"
        "file=clean   ; inline comment\n"
        "\n"
        "[policies]\n"
        "H1 = on\n");
    EXPECT_EQ(cfg.get("sources", "network"), "taint");
    EXPECT_EQ(cfg.get("sources", "file"), "clean");
    EXPECT_TRUE(cfg.getBool("policies", "H1"));
    EXPECT_FALSE(cfg.has("policies", "H2"));
    EXPECT_EQ(cfg.get("missing", "key", "dflt"), "dflt");
    EXPECT_EQ(cfg.sections().size(), 2u);
    EXPECT_EQ(cfg.keys("sources").size(), 2u);
}

TEST(Config, CaseInsensitiveLookup)
{
    Config cfg = Config::parse("[Tracking]\nGranularity = Byte\n");
    EXPECT_EQ(cfg.get("tracking", "granularity"), "Byte");
}

TEST(Config, Booleans)
{
    Config cfg = Config::parse(
        "[b]\na=on\nb=off\nc=true\nd=no\ne=1\nf=0\nbad=maybe\n");
    EXPECT_TRUE(cfg.getBool("b", "a"));
    EXPECT_FALSE(cfg.getBool("b", "b"));
    EXPECT_TRUE(cfg.getBool("b", "c"));
    EXPECT_FALSE(cfg.getBool("b", "d"));
    EXPECT_TRUE(cfg.getBool("b", "e"));
    EXPECT_FALSE(cfg.getBool("b", "f"));
    EXPECT_THROW(cfg.getBool("b", "bad"), FatalError);
    EXPECT_TRUE(cfg.getBool("b", "missing", true));
}

TEST(StatSet, MergeSumsCounterWise)
{
    StatSet a;
    a.add("loads", 3);
    a.add("stores", 5);
    StatSet b;
    b.add("loads", 7);
    b.add("stores", 11);
    a.merge(b);
    EXPECT_EQ(a.get("loads"), 10u);
    EXPECT_EQ(a.get("stores"), 16u);
    // The merged-from set is untouched.
    EXPECT_EQ(b.get("loads"), 7u);
}

TEST(StatSet, MergeCreatesAbsentCounters)
{
    StatSet a;
    a.add("only_in_a", 1);
    StatSet b;
    b.add("only_in_b", 2);
    a.merge(b);
    EXPECT_EQ(a.get("only_in_a"), 1u);
    EXPECT_EQ(a.get("only_in_b"), 2u);
    EXPECT_EQ(a.names().size(), 2u);
    // Merging an empty set changes nothing.
    a.merge(StatSet{});
    EXPECT_EQ(a.names().size(), 2u);
}

TEST(StatSet, SelfMergeDoubles)
{
    StatSet a;
    a.add("x", 21);
    a.add("y", 1);
    a.merge(a);
    EXPECT_EQ(a.get("x"), 42u);
    EXPECT_EQ(a.get("y"), 2u);
    EXPECT_EQ(a.names().size(), 2u);
}

TEST(ConcurrentStatSet, MergeAndSnapshot)
{
    ConcurrentStatSet agg;
    StatSet one;
    one.add("cycles", 100);
    agg.merge(one);
    agg.merge(one);
    agg.add("jobs");
    StatSet out = agg.snapshot();
    EXPECT_EQ(out.get("cycles"), 200u);
    EXPECT_EQ(out.get("jobs"), 1u);
}

TEST(Config, Integers)
{
    Config cfg = Config::parse("[n]\ndec = 42\nhex = 0x20\nbad = 1x\n");
    EXPECT_EQ(cfg.getInt("n", "dec"), 42);
    EXPECT_EQ(cfg.getInt("n", "hex"), 32);
    EXPECT_EQ(cfg.getInt("n", "missing", -7), -7);
    EXPECT_THROW(cfg.getInt("n", "bad"), FatalError);
}

TEST(Config, SyntaxErrors)
{
    EXPECT_THROW(Config::parse("[unterminated\n"), FatalError);
    EXPECT_THROW(Config::parse("[]\n"), FatalError);
    EXPECT_THROW(Config::parse("keywithoutvalue\n"), FatalError);
    EXPECT_THROW(Config::parse("= value\n"), FatalError);
}

TEST(Config, SetOverwrites)
{
    Config cfg;
    cfg.set("a", "k", "1");
    cfg.set("a", "k", "2");
    EXPECT_EQ(cfg.get("a", "k"), "2");
    EXPECT_EQ(cfg.keys("a").size(), 1u);
}

TEST(StringHelpers, TrimSplitIequals)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_TRUE(iequals("AbC", "abc"));
    EXPECT_FALSE(iequals("ab", "abc"));
    auto parts = splitTrim(" a, b ,c ", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Bitops, BitsAndBit)
{
    EXPECT_EQ(bits(0xF0F0, 7, 4), 0xFu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_TRUE(bit(0b100, 2));
    EXPECT_FALSE(bit(0b100, 1));
}

TEST(Bitops, InsertBit)
{
    EXPECT_EQ(insertBit(0, 5, true), 32u);
    EXPECT_EQ(insertBit(0xFF, 0, false), 0xFEu);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xFF, 8), -1);
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0xFFFFFFFF, 32), -1);
    EXPECT_EQ(signExtend(5, 64), 5);
}

TEST(Bitops, Rounding)
{
    EXPECT_EQ(roundUp(0, 16), 0u);
    EXPECT_EQ(roundUp(1, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(Stats, Counters)
{
    StatSet stats;
    stats.add("a");
    stats.add("a", 4);
    stats.add("b", 2);
    EXPECT_EQ(stats.get("a"), 5u);
    EXPECT_EQ(stats.get("missing"), 0u);
    StatSet other;
    other.add("a", 10);
    other.add("c", 1);
    stats.merge(other);
    EXPECT_EQ(stats.get("a"), 15u);
    EXPECT_EQ(stats.get("c"), 1u);
    EXPECT_EQ(stats.names().size(), 3u);
    stats.clear();
    EXPECT_EQ(stats.get("a"), 0u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(SHIFT_FATAL("boom %d", 3), FatalError);
    try {
        SHIFT_FATAL("code %d", 42);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("code 42"),
                  std::string::npos);
    }
}

} // namespace
} // namespace shift
