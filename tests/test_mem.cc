/**
 * @file
 * Memory-system tests: sparse paging, the spill/fill NaT sidecar,
 * Itanium-style regions and unimplemented-bit holes, the figure-4 tag
 * address mapping, and the L1D model.
 */

#include <gtest/gtest.h>

#include <random>

#include "mem/address_space.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace shift
{
namespace
{

constexpr uint64_t kBase = regionBase(kDataRegion) + 0x4000;

TEST(Memory, ReadWriteAllSizes)
{
    Memory mem;
    mem.map(kBase, 4096);
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        uint64_t value = 0x1122334455667788ULL;
        ASSERT_EQ(mem.write(kBase + 64, size, value), MemFault::None);
        uint64_t out = 0;
        ASSERT_EQ(mem.read(kBase + 64, size, out), MemFault::None);
        uint64_t mask = size == 8 ? ~0ULL : ((1ULL << (8 * size)) - 1);
        EXPECT_EQ(out, value & mask) << size;
    }
}

TEST(Memory, LittleEndianLayout)
{
    Memory mem;
    mem.map(kBase, 4096);
    mem.write(kBase, 4, 0xAABBCCDD);
    uint64_t byte = 0;
    mem.read(kBase, 1, byte);
    EXPECT_EQ(byte, 0xDDu);
    mem.read(kBase + 3, 1, byte);
    EXPECT_EQ(byte, 0xAAu);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    mem.map(kBase, 2 * Memory::kPageSize);
    uint64_t addr = kBase + Memory::kPageSize - 3;
    ASSERT_EQ(mem.write(addr, 8, 0x0102030405060708ULL),
              MemFault::None);
    uint64_t out = 0;
    ASSERT_EQ(mem.read(addr, 8, out), MemFault::None);
    EXPECT_EQ(out, 0x0102030405060708ULL);
}

TEST(Memory, UnmappedAccessFaults)
{
    Memory mem;
    uint64_t out;
    EXPECT_EQ(mem.read(kBase, 8, out), MemFault::Unmapped);
    EXPECT_EQ(mem.write(kBase, 8, 1), MemFault::Unmapped);
    mem.map(kBase, 16);
    EXPECT_EQ(mem.read(kBase, 8, out), MemFault::None);
    // Access straddling into an unmapped page still faults.
    uint64_t edge = kBase + Memory::kPageSize - 4;
    EXPECT_EQ(mem.read(edge, 8, out), MemFault::Unmapped);
}

TEST(Memory, UnimplementedBitsFault)
{
    Memory mem;
    uint64_t out;
    EXPECT_EQ(mem.read(kInvalidAddress, 8, out),
              MemFault::Unimplemented);
    uint64_t holed = regionBase(kDataRegion) | (1ULL << 45);
    EXPECT_EQ(mem.read(holed, 8, out), MemFault::Unimplemented);
}

TEST(Memory, TagAndOsRegionsAreDemandMapped)
{
    Memory mem;
    uint64_t out;
    EXPECT_EQ(mem.read(regionBase(kTagRegion) + 0x999, 1, out),
              MemFault::None);
    EXPECT_EQ(out, 0u); // demand pages are zeroed
    EXPECT_EQ(mem.write(regionBase(kOsRegion) + 0x10, 8, 7),
              MemFault::None);
}

TEST(Memory, SpillSidecarRoundTrip)
{
    Memory mem;
    mem.map(kBase, 4096);
    ASSERT_EQ(mem.writeSpill(kBase + 8, 42, true), MemFault::None);
    ASSERT_EQ(mem.writeSpill(kBase + 16, 43, false), MemFault::None);
    uint64_t value;
    bool nat;
    ASSERT_EQ(mem.readFill(kBase + 8, value, nat), MemFault::None);
    EXPECT_EQ(value, 42u);
    EXPECT_TRUE(nat);
    ASSERT_EQ(mem.readFill(kBase + 16, value, nat), MemFault::None);
    EXPECT_EQ(value, 43u);
    EXPECT_FALSE(nat);
    // A plain write to the slot clears nothing in the sidecar, but a
    // plain read never sees it.
    uint64_t plain;
    ASSERT_EQ(mem.read(kBase + 8, 8, plain), MemFault::None);
    EXPECT_EQ(plain, 42u);
}

TEST(Memory, ReadCString)
{
    Memory mem;
    mem.map(kBase, 4096);
    const char *text = "hello";
    mem.writeBytes(kBase, text, 6);
    std::string out;
    ASSERT_EQ(mem.readCString(kBase, out), MemFault::None);
    EXPECT_EQ(out, "hello");
}

// ---------------------------------------------------------------------
// Page-translation cache. The cache is architecturally invisible;
// these tests hammer the patterns that would expose a stale or
// misindexed entry: interleaved tag/data traffic, conflict-heavy
// working sets larger than the cache, and map() growth between
// accesses.
// ---------------------------------------------------------------------

TEST(Memory, TranslationCacheSurvivesConflictEviction)
{
    Memory mem;
    // 64 pages map onto a 16-entry direct-mapped cache: every access
    // below evicts another page's entry. Values must still round-trip.
    mem.map(kBase, 64 * Memory::kPageSize);
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t p = 0; p < 64; ++p) {
            uint64_t addr = kBase + p * Memory::kPageSize + 8 * pass;
            ASSERT_EQ(mem.write(addr, 8, p ^ (0xabcdULL << pass)),
                      MemFault::None);
        }
        for (uint64_t p = 0; p < 64; ++p) {
            uint64_t addr = kBase + p * Memory::kPageSize + 8 * pass;
            uint64_t out = 0;
            ASSERT_EQ(mem.read(addr, 8, out), MemFault::None);
            EXPECT_EQ(out, p ^ (0xabcdULL << pass));
        }
    }
}

TEST(Memory, TranslationCacheTagEntryInterleavesWithData)
{
    Memory mem;
    mem.map(kBase, Memory::kPageSize);
    uint64_t tagAddr = regionBase(kTagRegion) + 0x100; // demand-mapped
    // Alternate data/tag accesses, the SHIFT-instrumented pattern.
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(mem.write(kBase + 8 * (i % 16), 8, uint64_t(i)),
                  MemFault::None);
        ASSERT_EQ(mem.write(tagAddr + (i % 16), 1, uint64_t(i & 0xff)),
                  MemFault::None);
    }
    uint64_t data = 0, tag = 0;
    ASSERT_EQ(mem.read(kBase + 8 * 3, 8, data), MemFault::None);
    ASSERT_EQ(mem.read(tagAddr + 3, 1, tag), MemFault::None);
    // Last write to slot 3 was i = 99 (99 % 16 == 3).
    EXPECT_EQ(data, 99u);
    EXPECT_EQ(tag, 99u);
}

TEST(Memory, TranslationCacheInvalidatedByMap)
{
    Memory mem;
    mem.map(kBase, Memory::kPageSize);
    ASSERT_EQ(mem.write(kBase, 8, 0x1111), MemFault::None); // cache fill
    // Growing the address space must not disturb cached translations'
    // correctness, before or after the new mapping.
    mem.map(kBase + 8 * Memory::kPageSize, Memory::kPageSize);
    uint64_t out = 0;
    ASSERT_EQ(mem.read(kBase, 8, out), MemFault::None);
    EXPECT_EQ(out, 0x1111u);
    ASSERT_EQ(mem.write(kBase + 8 * Memory::kPageSize, 8, 0x2222),
              MemFault::None);
    ASSERT_EQ(mem.read(kBase + 8 * Memory::kPageSize, 8, out),
              MemFault::None);
    EXPECT_EQ(out, 0x2222u);
}

// ---------------------------------------------------------------------
// Address space / figure 4.
// ---------------------------------------------------------------------

TEST(AddressSpace, RegionDecomposition)
{
    EXPECT_EQ(regionOf(regionBase(3) + 5), 3u);
    EXPECT_EQ(regionOffset(regionBase(3) + 5), 5u);
    EXPECT_TRUE(isImplemented(regionBase(7) + ((1ULL << 36) - 1)));
    EXPECT_FALSE(isImplemented(regionBase(7) + (1ULL << 36)));
    EXPECT_FALSE(isImplemented(kInvalidAddress));
}

TEST(AddressSpace, TagAddressesLandInRegionZero)
{
    std::mt19937_64 rng(99);
    for (int i = 0; i < 2000; ++i) {
        unsigned region = rng() % 8;
        uint64_t offset = rng() & ((1ULL << 36) - 1);
        uint64_t va = regionBase(region) + offset;
        for (Granularity g : {Granularity::Byte, Granularity::Word}) {
            uint64_t tag = tagByteAddr(va, g);
            EXPECT_EQ(regionOf(tag), kTagRegion);
            EXPECT_TRUE(isImplemented(tag));
            EXPECT_LT(tagBitIndex(va, g), 8u);
        }
    }
}

TEST(AddressSpace, DistinctUnitsGetDistinctBits)
{
    // Consecutive tracking units map to consecutive (byte, bit) slots.
    std::mt19937_64 rng(7);
    for (int i = 0; i < 500; ++i) {
        unsigned region = 1 + rng() % 7;
        uint64_t offset = rng() & ((1ULL << 36) - 2 * 64);
        uint64_t va = regionBase(region) + offset;
        for (Granularity g : {Granularity::Byte, Granularity::Word}) {
            unsigned unit = 1u << granularityShift(g);
            uint64_t slotA =
                tagByteAddr(va, g) * 8 + tagBitIndex(va, g);
            uint64_t slotB = tagByteAddr(va + unit, g) * 8 +
                             tagBitIndex(va + unit, g);
            EXPECT_EQ(slotB, slotA + 1);
        }
    }
}

TEST(AddressSpace, ByteMapIsEightTimesDenser)
{
    uint64_t va = regionBase(2) + 0x12340;
    uint64_t spanBytes = 64 * 1024;
    uint64_t byteSpan = tagByteAddr(va + spanBytes, Granularity::Byte) -
                        tagByteAddr(va, Granularity::Byte);
    uint64_t wordSpan = tagByteAddr(va + spanBytes, Granularity::Word) -
                        tagByteAddr(va, Granularity::Word);
    EXPECT_EQ(byteSpan, spanBytes / 8);
    EXPECT_EQ(wordSpan, spanBytes / 64);
}

TEST(AddressSpace, DifferentRegionsNeverCollide)
{
    // The folded region number keeps tag spaces of all 8 regions
    // disjoint (the point of the figure-4 construction).
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        uint64_t offset = 0x123456;
        uint64_t prevTag = 0;
        for (unsigned region = 0; region < 8; ++region) {
            uint64_t tag = tagByteAddr(regionBase(region) + offset, g);
            if (region > 0) {
                EXPECT_GT(tag, prevTag);
            }
            prevTag = tag;
        }
    }
}

// ---------------------------------------------------------------------
// Cache model.
// ---------------------------------------------------------------------

TEST(Cache, HitAfterMiss)
{
    Cache cache;
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1030)); // same 64-byte line
    EXPECT_FALSE(cache.access(0x1040)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache::Params params;
    params.sizeBytes = 4 * 64; // 4 lines
    params.assoc = 4;          // fully associative, one set
    params.lineBytes = 64;
    Cache cache(params);
    for (uint64_t i = 0; i < 4; ++i)
        cache.access(i * 64);
    EXPECT_TRUE(cache.access(0));      // refresh line 0
    EXPECT_FALSE(cache.access(4 * 64)); // evicts LRU = line 1
    EXPECT_TRUE(cache.access(0));       // line 0 survived
    EXPECT_FALSE(cache.access(1 * 64)); // line 1 was evicted
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache;
    cache.access(0x40);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_FALSE(cache.access(0x40));
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache cache; // 16 KiB
    // Two passes over 64 KiB: everything misses both times.
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t a = 0; a < 64 * 1024; a += 64)
            cache.access(a);
    }
    EXPECT_EQ(cache.hits(), 0u);
}

// ----- snapshot / copy-on-write -----------------------------------------

TEST(MemorySnapshot, RestoreSharesPagesUntilWritten)
{
    Memory mem;
    mem.map(kBase, 2 * Memory::kPageSize);
    mem.write(kBase, 8, 0x1111);
    mem.write(kBase + Memory::kPageSize, 8, 0x2222);

    Memory::Snapshot snap = mem.snapshot();
    EXPECT_EQ(snap.pageCount(), 2u);

    Memory clone;
    clone.restore(snap);
    EXPECT_EQ(clone.pageCount(), 2u);
    EXPECT_EQ(clone.cowCopies(), 0u);

    uint64_t v = 0;
    ASSERT_EQ(clone.read(kBase, 8, v), MemFault::None);
    EXPECT_EQ(v, 0x1111u);

    // Reads share; the first write to a page copies exactly that page.
    ASSERT_EQ(clone.write(kBase, 8, 0x9999), MemFault::None);
    EXPECT_EQ(clone.cowCopies(), 1u);
    clone.read(kBase, 8, v);
    EXPECT_EQ(v, 0x9999u);

    // The origin and the snapshot are unaffected.
    mem.read(kBase, 8, v);
    EXPECT_EQ(v, 0x1111u);

    // Writing the same page again is free; the second page still shares.
    clone.write(kBase + 8, 8, 0x7777);
    EXPECT_EQ(clone.cowCopies(), 1u);
    clone.write(kBase + Memory::kPageSize, 8, 0x8888);
    EXPECT_EQ(clone.cowCopies(), 2u);
    mem.read(kBase + Memory::kPageSize, 8, v);
    EXPECT_EQ(v, 0x2222u);
}

TEST(MemorySnapshot, OriginWritesAfterSnapshotCowToo)
{
    Memory mem;
    mem.map(kBase, Memory::kPageSize);
    mem.write(kBase, 8, 0xAA);
    Memory::Snapshot snap = mem.snapshot();

    // The origin itself now shares with the snapshot: its next write
    // must not bleed into clones restored later.
    mem.write(kBase, 8, 0xBB);
    EXPECT_EQ(mem.cowCopies(), 1u);

    Memory clone;
    clone.restore(snap);
    uint64_t v = 0;
    clone.read(kBase, 8, v);
    EXPECT_EQ(v, 0xAAu);
}

TEST(MemorySnapshot, SpillSidecarIsCaptured)
{
    Memory mem;
    mem.map(kBase, Memory::kPageSize);
    ASSERT_EQ(mem.writeSpill(kBase, 0x42, true), MemFault::None);
    Memory::Snapshot snap = mem.snapshot();

    Memory clone;
    clone.restore(snap);
    uint64_t v = 0;
    bool nat = false;
    ASSERT_EQ(clone.readFill(kBase, v, nat), MemFault::None);
    EXPECT_EQ(v, 0x42u);
    EXPECT_TRUE(nat);

    // COW preserves the sidecar of untouched words on the copied page.
    clone.writeSpill(kBase + 8, 1, false);
    clone.readFill(kBase, v, nat);
    EXPECT_EQ(v, 0x42u);
    EXPECT_TRUE(nat);
}

TEST(MemorySnapshot, SnapshotOfRestoredCloneChains)
{
    Memory mem;
    mem.map(kBase, Memory::kPageSize);
    mem.write(kBase, 8, 1);
    Memory::Snapshot first = mem.snapshot();

    Memory clone;
    clone.restore(first);
    clone.write(kBase, 8, 2);
    Memory::Snapshot second = clone.snapshot();

    Memory grandchild;
    grandchild.restore(second);
    uint64_t v = 0;
    grandchild.read(kBase, 8, v);
    EXPECT_EQ(v, 2u);
    grandchild.write(kBase, 8, 3);

    clone.read(kBase, 8, v);
    EXPECT_EQ(v, 2u);
    mem.read(kBase, 8, v);
    EXPECT_EQ(v, 1u);
}

} // namespace
} // namespace shift
