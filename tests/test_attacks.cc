/**
 * @file
 * Security evaluation (paper table 2): every attack scenario must be
 * detected by its expected policy on the exploit input and raise no
 * alert on the benign input, at both tracking granularities.
 */

#include <gtest/gtest.h>

#include "workloads/attacks.hh"

namespace shift
{
namespace
{

using workloads::AttackRun;
using workloads::AttackScenario;
using workloads::attackScenarios;
using workloads::runAttackScenario;

struct Case
{
    std::string name;
    Granularity granularity;
};

class AttackTest : public ::testing::TestWithParam<Case>
{
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const AttackScenario &s : attackScenarios()) {
        cases.push_back({s.name, Granularity::Byte});
        cases.push_back({s.name, Granularity::Word});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, AttackTest, ::testing::ValuesIn(allCases()),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + (info.param.granularity == Granularity::Byte
                           ? "_byte"
                           : "_word");
    });

TEST_P(AttackTest, ExploitDetected)
{
    const AttackScenario &scenario =
        workloads::attackScenario(GetParam().name);
    AttackRun run =
        runAttackScenario(scenario, true, GetParam().granularity);
    EXPECT_TRUE(run.detected)
        << "expected " << scenario.expectedPolicy << "; exited="
        << run.result.exited << " code=" << run.result.exitCode
        << " fault=" << faultKindName(run.result.fault.kind) << " ("
        << run.result.fault.detail << ") alerts="
        << (run.result.alerts.empty()
                ? "none"
                : run.result.alerts.back().policy + ": " +
                      run.result.alerts.back().message);
}

TEST_P(AttackTest, BenignRunsClean)
{
    const AttackScenario &scenario =
        workloads::attackScenario(GetParam().name);
    AttackRun run =
        runAttackScenario(scenario, false, GetParam().granularity);
    EXPECT_FALSE(run.falsePositive)
        << "fault=" << faultKindName(run.result.fault.kind) << " ("
        << run.result.fault.detail << ") alerts="
        << (run.result.alerts.empty()
                ? "none"
                : run.result.alerts.back().policy + ": " +
                      run.result.alerts.back().message);
    EXPECT_TRUE(run.result.exited);
}

TEST(AttackCatalog, HasEightScenarios)
{
    EXPECT_EQ(attackScenarios().size(), 8u);
}

TEST(AttackCatalog, UnprotectedRunsSucceedForExploits)
{
    // Without SHIFT, every attack "succeeds" (no fault, no alert),
    // matching the paper's "Without SHIFT protection, all attacks
    // succeed."
    for (const AttackScenario &scenario : attackScenarios()) {
        SessionOptions options;
        options.mode = TrackingMode::None;
        options.policy = scenario.policy;
        Session session(scenario.source, options);
        scenario.setupExploit(session);
        RunResult r = session.run();
        EXPECT_TRUE(r.exited) << scenario.name << ": "
                              << faultKindName(r.fault.kind) << " ("
                              << r.fault.detail << ")";
        EXPECT_TRUE(r.alerts.empty()) << scenario.name;
    }
}

} // namespace
} // namespace shift
