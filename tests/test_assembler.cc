/**
 * @file
 * Assembler tests: parsing of every instruction form, round trips
 * against the disassembler, assembled programs running on the
 * machine, and a hand-assembled figure-5 sequence behaving like the
 * instrumenter's output.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "support/logging.hh"

namespace shift
{
namespace
{

TEST(Assembler, RoundTripsThroughDisassembler)
{
    const char *lines[] = {
        "add r4 = r5, r6",
        "sub r4 = r5, -3",
        "mul r4 = r5, r6",
        "div.u r4 = r5, r6",
        "mod r4 = r5, 7",
        "andcm r4 = r5, r6",
        "shl r4 = r5, 3",
        "shr.u r4 = r5, r6",
        "shr r4 = r5, 2",
        "sxt4 r4 = r5",
        "zxt1 r4 = r5",
        "extr.u r4 = r5, 61, 3",
        "shladd r4 = r5, 3, r6",
        "mov r4 = r5",
        "movl r4 = -123456789",
        "cmp.ltu p1, p2 = r3, r4",
        "cmp.nat.eq p1, p2 = r3, 0",
        "tnat p1, p2 = r4",
        "tbit p1, p2 = r4, 5",
        "ld1 r4 = [r5]",
        "ld8.s r4 = [r5]",
        "ld8.fill r4 = [r5]",
        "st2 [r5] = r4",
        "st8.spill [r5] = r4",
        "br.call strcpy",
        "br.ret",
        "br.calli b6",
        "mov b6 = r2",
        "mov r2 = b6",
        "mov ar.unat = r2",
        "mov r1 = ar.unat",
        "setnat r4",
        "clrnat r4",
        "syscall 99",
        "nop",
        "halt",
        "(p12) movl r4 = 1",
        "(p6) add r4 = r4, r31",
    };
    for (const char *line : lines) {
        Instr instr = assembleLine(line);
        EXPECT_EQ(disassemble(instr), line) << line;
        // And a second trip is stable.
        EXPECT_EQ(disassemble(assembleLine(disassemble(instr))),
                  std::string(line));
    }
}

TEST(Assembler, RejectsMalformedInput)
{
    EXPECT_THROW(assembleLine("frobnicate r1 = r2"), FatalError);
    EXPECT_THROW(assembleLine("add r1 r2, r3"), FatalError);
    EXPECT_THROW(assembleLine("add r1 = r2, r3 junk"), FatalError);
    EXPECT_THROW(assembleLine("ld8 r99 = [r5]"), FatalError);
    EXPECT_THROW(assembleLine("cmp.zz p1, p2 = r1, r2"), FatalError);
    EXPECT_THROW(assemble("add r1 = r2, r3\n"), FatalError); // no func
}

TEST(Assembler, AssembledProgramRuns)
{
    Program program = assemble(R"ASM(
        func main:
            movl r4 = 6
            movl r5 = 7
            mul r6 = r4, r5
            mov r8 = r6
            br.ret
    )ASM");
    Machine machine(program);
    RunResult r = machine.run(100);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Assembler, LabelsAndBranches)
{
    Program program = assemble(R"ASM(
        func main:
            movl r4 = 0
            movl r5 = 0
        loop:
            add r5 = r5, r4
            add r4 = r4, 1
            cmp.lt p6, p7 = r4, 11
            (p6) br loop
            mov r8 = r5
            br.ret
    )ASM");
    Machine machine(program);
    RunResult r = machine.run(1000);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 55);
}

TEST(Assembler, MultipleFunctionsAndCalls)
{
    Program program = assemble(R"ASM(
        func double_it:
            add r8 = r16, r16
            br.ret

        func main:
            movl r16 = 21
            br.call double_it
            br.ret
    )ASM");
    Machine machine(program);
    RunResult r = machine.run(100);
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(Assembler, HandWrittenFigure5Sequence)
{
    // The paper's NaT-source manufacture plus conditional taint: build
    // it by hand, run it, observe the NaT bit land where figure 5
    // says it should.
    Program program = assemble(R"ASM(
        func main:
            ; manufacture the NaT source (figure 5 instruction 1)
            movl r31 = 68719476736       ; an unimplemented address
            ld8.s r31 = [r31]            ; deferred fault -> NaT, 0
            movl r4 = 1234
            tnat p12, p13 = r31
            (p12) add r4 = r4, r31       ; taint r4, keep its value
            chk.s r4, recover
            mov r8 = r4                  ; not reached: r4 has NaT
            halt
        recover:
            movl r8 = 99
            br.ret
    )ASM");
    Machine machine(program);
    RunResult r = machine.run(100);
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 99); // chk.s diverted to recovery
    EXPECT_TRUE(machine.gprNat(4));
    EXPECT_EQ(machine.gprVal(4), 1234u);
}

TEST(Assembler, CommentsAndEntrySelection)
{
    Program program = assemble(
        "; leading comment\n"
        "func start:   // not called main\n"
        "    movl r8 = 5   ; trailing\n"
        "    br.ret\n");
    EXPECT_EQ(program.entry, "start");
    Machine machine(program);
    EXPECT_EQ(machine.run(100).exitCode, 5);
}

} // namespace
} // namespace shift
