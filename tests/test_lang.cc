/**
 * @file
 * MiniC compiler tests: lexing, parsing, code generation, register
 * allocation and end-to-end execution on the simulated machine.
 */

#include <gtest/gtest.h>

#include "lang/compiler.hh"
#include "lang/lexer.hh"
#include "sim/machine.hh"
#include "support/logging.hh"

namespace shift
{
namespace
{

/** Compile and run a MiniC program; return its exit code. */
int64_t
runProgram(const std::string &source)
{
    Program program = minic::compileProgram(source);
    Machine machine(program);
    RunResult result = machine.run(200'000'000);
    EXPECT_TRUE(result.exited)
        << "fault: " << faultKindName(result.fault.kind) << " at fn="
        << result.fault.function << " pc=" << result.fault.pc << " ("
        << result.fault.detail << ")";
    return result.exitCode;
}

TEST(Lexer, TokenKinds)
{
    auto toks = minic::tokenize("int x = 42; // comment\nchar *s;");
    ASSERT_GE(toks.size(), 9u);
    EXPECT_TRUE(toks[0].isKeyword("int"));
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_TRUE(toks[2].isPunct("="));
    EXPECT_EQ(toks[3].intVal, 42);
}

TEST(Lexer, StringEscapes)
{
    auto toks = minic::tokenize("\"a\\n\\t\\\\\\\"b\"");
    ASSERT_EQ(toks[0].kind, minic::TokKind::StrLit);
    EXPECT_EQ(toks[0].strVal, "a\n\t\\\"b");
}

TEST(Lexer, CharLiterals)
{
    auto toks = minic::tokenize("'A' '\\n' '\\0'");
    EXPECT_EQ(toks[0].intVal, 'A');
    EXPECT_EQ(toks[1].intVal, '\n');
    EXPECT_EQ(toks[2].intVal, 0);
}

TEST(Lexer, HexLiterals)
{
    auto toks = minic::tokenize("0xFF 0x10");
    EXPECT_EQ(toks[0].intVal, 255);
    EXPECT_EQ(toks[1].intVal, 16);
}

TEST(Lexer, RejectsBadInput)
{
    EXPECT_THROW(minic::tokenize("int @"), FatalError);
    EXPECT_THROW(minic::tokenize("\"unterminated"), FatalError);
}

TEST(Compile, ReturnsConstant)
{
    EXPECT_EQ(runProgram("int main() { return 7; }"), 7);
}

TEST(Compile, Arithmetic)
{
    EXPECT_EQ(runProgram("int main() { return (3 + 4) * 5 - 10 / 2; }"),
              30);
    EXPECT_EQ(runProgram("int main() { return 17 % 5; }"), 2);
    EXPECT_EQ(runProgram("int main() { return -(3 - 10); }"), 7);
    EXPECT_EQ(runProgram("int main() { return 1 << 6; }"), 64);
    EXPECT_EQ(runProgram("int main() { return 256 >> 3; }"), 32);
    EXPECT_EQ(runProgram("int main() { return (12 & 10) | (1 ^ 3); }"),
              10);
    EXPECT_EQ(runProgram("int main() { return ~0 & 255; }"), 255);
}

TEST(Compile, Locals)
{
    EXPECT_EQ(runProgram("int main() { int a = 3; int b = 4;"
                         " a = a + b; return a; }"),
              7);
}

TEST(Compile, CompoundAssign)
{
    EXPECT_EQ(runProgram("int main() { int a = 3; a += 4; a *= 2;"
                         " a -= 1; a /= 2; a %= 4; return a; }"),
              2);
}

TEST(Compile, IncDec)
{
    EXPECT_EQ(runProgram("int main() { int a = 5; int b = a++;"
                         " return a * 10 + b; }"),
              65);
    EXPECT_EQ(runProgram("int main() { int a = 5; int b = ++a;"
                         " return a * 10 + b; }"),
              66);
    EXPECT_EQ(runProgram("int main() { int a = 5; a--; --a;"
                         " return a; }"),
              3);
}

TEST(Compile, IfElse)
{
    EXPECT_EQ(runProgram("int main() { if (3 > 2) return 1;"
                         " return 0; }"),
              1);
    EXPECT_EQ(runProgram("int main() { int x = 4;"
                         " if (x == 3) return 1; else if (x == 4)"
                         " return 2; else return 3; }"),
              2);
}

TEST(Compile, Loops)
{
    EXPECT_EQ(runProgram("int main() { int s = 0;"
                         " for (int i = 1; i <= 10; i++) s += i;"
                         " return s; }"),
              55);
    EXPECT_EQ(runProgram("int main() { int s = 0; int i = 0;"
                         " while (i < 5) { s += i; i++; } return s; }"),
              10);
    EXPECT_EQ(runProgram("int main() { int s = 0;"
                         " for (int i = 0; i < 100; i++) {"
                         "   if (i == 5) continue;"
                         "   if (i == 8) break;"
                         "   s += i; } return s; }"),
              23);
}

TEST(Compile, LogicalOps)
{
    EXPECT_EQ(runProgram("int main() { return (1 && 2) + (0 || 3 != 0)"
                         " + !0; }"),
              3);
    // Short circuit: the divide by zero must not execute.
    EXPECT_EQ(runProgram("int main() { int z = 0;"
                         " if (z != 0 && 10 / z > 0) return 1;"
                         " return 2; }"),
              2);
}

TEST(Compile, Ternary)
{
    EXPECT_EQ(runProgram("int main() { int x = 3;"
                         " return x > 2 ? 10 : 20; }"),
              10);
}

TEST(Compile, FunctionsAndRecursion)
{
    EXPECT_EQ(runProgram("int add(int a, int b) { return a + b; }"
                         "int main() { return add(3, add(4, 5)); }"),
              12);
    EXPECT_EQ(runProgram("int fib(int n) { if (n < 2) return n;"
                         " return fib(n - 1) + fib(n - 2); }"
                         "int main() { return fib(10); }"),
              55);
}

TEST(Compile, GlobalVariables)
{
    EXPECT_EQ(runProgram("int counter = 5;"
                         "void bump() { counter += 3; }"
                         "int main() { bump(); bump();"
                         " return counter; }"),
              11);
}

TEST(Compile, ArraysAndPointers)
{
    EXPECT_EQ(runProgram("int main() { int a[10];"
                         " for (int i = 0; i < 10; i++) a[i] = i * i;"
                         " return a[7]; }"),
              49);
    EXPECT_EQ(runProgram("int main() { int a[4]; int *p = a;"
                         " p[0] = 5; *(p + 1) = 6; p[2] = p[0] + p[1];"
                         " return a[2]; }"),
              11);
    EXPECT_EQ(runProgram("int main() { int x = 3; int *p = &x;"
                         " *p = 9; return x; }"),
              9);
}

TEST(Compile, PointerArithmetic)
{
    EXPECT_EQ(runProgram("int main() { int a[8]; int *p = &a[2];"
                         " int *q = &a[7]; return q - p; }"),
              5);
    EXPECT_EQ(runProgram("int main() { char s[8]; char *p = s;"
                         " p++; p += 2; s[3] = 42; return *p; }"),
              42);
}

TEST(Compile, CharsAndStrings)
{
    EXPECT_EQ(runProgram("int main() { char *s = \"hi\";"
                         " return s[0] + s[1]; }"),
              'h' + 'i');
    EXPECT_EQ(runProgram("char msg[8] = \"abc\";"
                         "int main() { return msg[1]; }"),
              'b');
}

TEST(Compile, IntNarrowing)
{
    // int is 4 bytes in memory: the high bits vanish on a round trip.
    EXPECT_EQ(runProgram("int g;"
                         "int main() { long big = 0x1F00000001;"
                         " g = (int)big; return g == 1; }"),
              1);
    // char is 1 byte unsigned.
    EXPECT_EQ(runProgram("int main() { char c = (char)300;"
                         " return c; }"),
              300 % 256);
}

TEST(Compile, SignedIntMemory)
{
    // Negative int survives a store/load round trip (sign extension).
    EXPECT_EQ(runProgram("int g;"
                         "int main() { g = -5; return g + 10; }"),
              5);
}

TEST(Compile, GlobalArray)
{
    EXPECT_EQ(runProgram("int table[100];"
                         "int main() {"
                         " for (int i = 0; i < 100; i++) table[i] = i;"
                         " int s = 0;"
                         " for (int i = 0; i < 100; i++) s += table[i];"
                         " return s / 10; }"),
              495);
}

TEST(Compile, FunctionPointers)
{
    EXPECT_EQ(runProgram("int twice(int x) { return 2 * x; }"
                         "int thrice(int x) { return 3 * x; }"
                         "int main() { long f = &twice;"
                         " int a = f(10);"
                         " f = &thrice;"
                         " return a + f(10); }"),
              50);
}

TEST(Compile, ManyLocalsForceSpills)
{
    // More live values than the 13-register pool: exercises spill code.
    std::string src = "int main() {";
    for (int i = 0; i < 24; ++i)
        src += "int v" + std::to_string(i) + " = " + std::to_string(i) +
               ";";
    src += "int s = 0;";
    for (int i = 0; i < 24; ++i)
        src += "s += v" + std::to_string(i) + ";";
    src += "return s; }";
    EXPECT_EQ(runProgram(src), 276);
}

TEST(Compile, DeepExpression)
{
    EXPECT_EQ(runProgram("int main() { return ((((1+2)*3)+((4+5)*6))"
                         " * 2 + (7 * (8 + 9))) % 100; }"),
              45);
}

TEST(Compile, BlockScopingAndShadowing)
{
    EXPECT_EQ(runProgram("int main() { int x = 1;"
                         " { int x = 2; { int x = 3; } x = x + 10; }"
                         " return x; }"),
              1);
}

TEST(Compile, NestedCallsInArguments)
{
    EXPECT_EQ(runProgram("int add(int a, int b) { return a + b; }"
                         "int main() { return add(add(1, 2),"
                         " add(add(3, 4), 5)); }"),
              15);
}

TEST(Compile, PointerComparisons)
{
    EXPECT_EQ(runProgram("int main() { int a[4];"
                         " int *p = &a[1]; int *q = &a[3];"
                         " return (p < q) * 4 + (p == q) * 2"
                         "      + (q >= p); }"),
              5);
}

TEST(Compile, CharIsUnsigned)
{
    // 0xFF as a char compares as 255, not -1.
    EXPECT_EQ(runProgram("int main() { char c = (char)255;"
                         " if (c > 127) return 1; return 0; }"),
              1);
}

TEST(Compile, TernaryNesting)
{
    EXPECT_EQ(runProgram("int main() { int x = 2;"
                         " return x == 1 ? 10 : x == 2 ? 20 : 30; }"),
              20);
}

TEST(Compile, EarlyReturnFromNestedLoops)
{
    EXPECT_EQ(runProgram("int main() {"
                         " for (int i = 0; i < 10; i++)"
                         "   for (int j = 0; j < 10; j++)"
                         "     if (i * j == 12) return i * 10 + j;"
                         " return 0; }"),
              26);
}

TEST(Compile, RecursiveQuicksort)
{
    const char *src = R"MC(
int a[64];

void qsort_range(int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t = a[i]; a[i] = a[j]; a[j] = t;
            i++; j--;
        }
    }
    qsort_range(lo, j);
    qsort_range(i, hi);
}

int main() {
    int seed = 12345;
    for (int i = 0; i < 64; i++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        a[i] = seed % 1000;
    }
    qsort_range(0, 63);
    for (int i = 1; i < 64; i++) {
        if (a[i - 1] > a[i]) return 1;  // not sorted
    }
    return 0;
}
)MC";
    EXPECT_EQ(runProgram(src), 0);
}

TEST(Compile, StringLiteralDeduplication)
{
    Program program = minic::compileProgram(
        "int main() { char *a = \"same\"; char *b = \"same\";"
        " char *c = \"other\"; return a == b; }");
    int strGlobals = 0;
    for (const GlobalDef &g : program.globals) {
        if (g.name.rfind("__str_", 0) == 0)
            ++strGlobals;
    }
    EXPECT_EQ(strGlobals, 2);
    EXPECT_EQ(runProgram("int main() { char *a = \"same\";"
                         " char *b = \"same\"; return a == b; }"),
              1);
}

TEST(Compile, GlobalPointerInitializer)
{
    EXPECT_EQ(runProgram("char *greeting = \"hey\";"
                         "int main() { return greeting[1]; }"),
              'e');
}

TEST(Compile, ErrorsAreFatal)
{
    EXPECT_THROW(minic::compileProgram("int main() { return x; }"),
                 FatalError);
    EXPECT_THROW(minic::compileProgram("int main() { return 1 }"),
                 FatalError);
    EXPECT_THROW(minic::compileProgram("int f() { return 0; }"),
                 FatalError); // no main
    EXPECT_THROW(minic::compileProgram(
                     "int main() { break; return 0; }"),
                 FatalError);
}

TEST(Compile, StaticCodeHasOnlyPhysicalRegisters)
{
    Program program = minic::compileProgram(
        "int f(int a, int b) { int c[4]; c[0] = a; c[1] = b;"
        " return c[0] * c[1]; }"
        "int main() { return f(6, 7); }");
    for (const Function &fn : program.functions) {
        for (const Instr &instr : fn.code) {
            EXPECT_LT(instr.r1, kNumGpr) << fn.name;
            EXPECT_LT(instr.r2, kNumGpr) << fn.name;
            EXPECT_LT(instr.r3, kNumGpr) << fn.name;
        }
    }
    EXPECT_EQ(runProgram("int f(int a, int b) { int c[4]; c[0] = a;"
                         " c[1] = b; return c[0] * c[1]; }"
                         "int main() { return f(6, 7); }"),
              42);
}

} // namespace
} // namespace shift
