/**
 * @file
 * Web-server workload tests: correctness of the served content under
 * every tracking mode, and the figure-6 property that SHIFT overhead
 * on an I/O-bound server is small and shrinks as files grow.
 */

#include <gtest/gtest.h>

#include "workloads/httpd.hh"

namespace shift
{
namespace
{

using workloads::HttpdConfig;
using workloads::HttpdRun;
using workloads::runHttpd;

TEST(Httpd, ServesFilesCorrectly)
{
    HttpdConfig config;
    config.mode = TrackingMode::None;
    config.fileSize = 4096;
    config.requests = 5;
    HttpdRun run = runHttpd(config);
    EXPECT_TRUE(run.result.exited)
        << faultKindName(run.result.fault.kind) << " ("
        << run.result.fault.detail << ")";
    EXPECT_TRUE(run.responsesOk);
    EXPECT_EQ(run.requestsServed, 5u);
}

TEST(Httpd, ShiftTrackingPreservesResponses)
{
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        HttpdConfig config;
        config.mode = TrackingMode::Shift;
        config.granularity = g;
        config.fileSize = 4096;
        config.requests = 5;
        HttpdRun run = runHttpd(config);
        EXPECT_TRUE(run.result.exited)
            << faultKindName(run.result.fault.kind) << " fn="
            << run.result.fault.function << " pc=" << run.result.fault.pc
            << " (" << run.result.fault.detail << ")"
            << (run.result.alerts.empty()
                    ? ""
                    : " alert=" + run.result.alerts.back().policy +
                          ": " + run.result.alerts.back().message);
        EXPECT_TRUE(run.result.alerts.empty());
        EXPECT_TRUE(run.responsesOk);
    }
}

TEST(Httpd, OverheadIsSmallAndShrinksWithFileSize)
{
    auto overheadAt = [](uint64_t size) {
        HttpdConfig base;
        base.mode = TrackingMode::None;
        base.fileSize = size;
        base.requests = 12;
        HttpdRun baseRun = runHttpd(base);
        EXPECT_TRUE(baseRun.responsesOk);

        HttpdConfig tracked = base;
        tracked.mode = TrackingMode::Shift;
        tracked.granularity = Granularity::Byte;
        HttpdRun trackedRun = runHttpd(tracked);
        EXPECT_TRUE(trackedRun.responsesOk);

        return static_cast<double>(trackedRun.totalCycles) /
                   static_cast<double>(baseRun.totalCycles) -
               1.0;
    };

    double small = overheadAt(4 * 1024);
    double large = overheadAt(512 * 1024);
    // Figure 6: overhead is a few percent at 4 KB and fades for large
    // transfers.
    EXPECT_LT(small, 0.30) << "4KB overhead too large: " << small;
    EXPECT_GT(small, 0.0);
    EXPECT_LT(large, small);
    EXPECT_LT(large, 0.05) << "512KB overhead too large: " << large;
}

TEST(Httpd, DetectsTraversalAttackWhileServing)
{
    // The same server binary, attacked: H2 fires on a crafted path.
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy.taintNetwork = true;
    options.policy.taintFile = false;
    options.policy.h2 = true;
    options.policy.docRoot = "/www";
    Session session(workloads::kHttpdSource, options);
    session.os().addFile("/www/data.bin", "payload");
    session.os().addFile("/etc/shadow", "root:secret");
    session.os().queueConnection(
        "GET /../../etc/shadow HTTP/1.0\r\n\r\n");
    RunResult r = session.run();
    ASSERT_FALSE(r.alerts.empty());
    EXPECT_EQ(r.alerts.back().policy, "H2");
}

} // namespace
} // namespace shift
