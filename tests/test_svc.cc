/**
 * @file
 * Fleet-service unit tests: the bounded MPMC queue, machine snapshot
 * capture/restore, the SessionTemplate compile-once / clone-many
 * factory, the Session run-once guard, and per-clone log tagging.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/session_template.hh"
#include "session_helpers.hh"
#include "support/logging.hh"
#include "svc/mpmc_queue.hh"

namespace shift
{
namespace
{

using svc::MpmcQueue;
using testutil::shiftOptions;

// ----- MpmcQueue --------------------------------------------------------

TEST(MpmcQueue, FifoThroughOneThread)
{
    MpmcQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), std::optional<int>(1));
    EXPECT_EQ(q.pop(), std::optional<int>(2));
    EXPECT_EQ(q.pop(), std::optional<int>(3));
}

TEST(MpmcQueue, CloseDrainsThenEndsStream)
{
    MpmcQueue<int> q(8);
    q.push(10);
    q.push(20);
    q.close();
    EXPECT_FALSE(q.push(30)); // rejected after close
    EXPECT_EQ(q.pop(), std::optional<int>(10));
    EXPECT_EQ(q.pop(), std::optional<int>(20));
    EXPECT_EQ(q.pop(), std::nullopt); // end of stream, no block
}

TEST(MpmcQueue, BoundedPushBlocksUntilPopped)
{
    MpmcQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2); // must block: queue is full
        pushed.store(true);
    });
    // Give the producer a chance to (wrongly) complete.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop(), std::optional<int>(1));
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop(), std::optional<int>(2));
}

TEST(MpmcQueue, ManyProducersManyConsumers)
{
    constexpr int kPerProducer = 200;
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    MpmcQueue<int> q(4);
    std::atomic<long> sum{0};
    std::atomic<int> count{0};

    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (std::optional<int> v = q.pop()) {
                sum.fetch_add(*v);
                count.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                q.push(p * kPerProducer + i);
        });
    }
    for (std::thread &t : producers)
        t.join();
    q.close();
    for (std::thread &t : threads)
        t.join();

    int n = kProducers * kPerProducer;
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

// ----- Session run-once guard -------------------------------------------

TEST(Session, SecondRunIsFatal)
{
    Session session("int main() { return 7; }", shiftOptions());
    RunResult r = session.run();
    EXPECT_EQ(r.exitCode, 7);
    EXPECT_THROW(session.run(), FatalError);
}

// ----- SessionTemplate / SessionClone -----------------------------------

const char *const kCounterSource =
    "int counter;"
    "int main() {"
    "  counter = counter + 1;"
    "  print_num(counter);"
    "  return counter;"
    "}";

TEST(SessionTemplate, ClonesMatchFreshSessionBitForBit)
{
    const char *src =
        "char buf[64];"
        "int main() {"
        "  __taint(buf, 64);"
        "  int i = 0; int acc = 0;"
        "  while (i < 1000) { acc = acc + i * 3; i = i + 1; }"
        "  print_num(acc);"
        "  return __mem_tainted(buf);"
        "}";

    Session fresh(src, shiftOptions());
    RunResult freshResult = fresh.run();
    std::string freshStdout = fresh.os().stdoutText();

    SessionTemplate tmpl(src, shiftOptions());
    for (int i = 0; i < 3; ++i) {
        auto clone = tmpl.instantiate();
        RunResult r = clone->run();
        EXPECT_EQ(r.exitCode, freshResult.exitCode);
        EXPECT_EQ(r.cycles, freshResult.cycles) << "clone " << i;
        EXPECT_EQ(r.instructions, freshResult.instructions);
        EXPECT_EQ(clone->os().stdoutText(), freshStdout);
    }
}

TEST(SessionTemplate, ClonesAreIsolated)
{
    // Each clone starts from the same snapshot: the global counter is
    // 1 in every clone, not accumulated across clones.
    SessionTemplate tmpl(kCounterSource, shiftOptions());
    for (int i = 0; i < 4; ++i) {
        auto clone = tmpl.instantiate();
        RunResult r = clone->run();
        EXPECT_TRUE(r.exited);
        EXPECT_EQ(r.exitCode, 1) << "clone " << i << " saw a sibling's "
                                 << "write through a shared page";
    }
}

TEST(SessionTemplate, CloneIsSingleUse)
{
    SessionTemplate tmpl(kCounterSource, shiftOptions());
    auto clone = tmpl.instantiate();
    clone->run();
    EXPECT_THROW(clone->run(), FatalError);
}

TEST(SessionTemplate, ProvisioningAfterFreezeIsFatal)
{
    SessionTemplate tmpl(kCounterSource, shiftOptions());
    tmpl.os(); // fine before freeze
    auto clone = tmpl.instantiate();
    EXPECT_TRUE(tmpl.frozen());
    EXPECT_THROW(tmpl.os(), FatalError);
}

TEST(SessionTemplate, SnapshotSharesPagesAndClonesCowLittle)
{
    SessionTemplate tmpl(kCounterSource, shiftOptions());
    auto clone = tmpl.instantiate();
    size_t shared = tmpl.snapshotPages();
    EXPECT_GT(shared, 0u);
    EXPECT_EQ(clone->machine().memory().cowCopies(), 0u);
    clone->run();
    // The run dirtied only a sliver of the snapshot (stack, the
    // counter page, some tag pages) — clone cost is O(dirtied pages).
    uint64_t dirtied = clone->machine().memory().cowCopies();
    EXPECT_GT(dirtied, 0u);
    EXPECT_LT(dirtied, shared / 2);
}

TEST(SessionTemplate, ConcurrentClonesComputeIdenticalResults)
{
    SessionTemplate tmpl(kCounterSource, shiftOptions());
    tmpl.freeze();

    constexpr int kThreads = 8;
    std::vector<RunResult> results(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            auto clone = tmpl.instantiate();
            results[i] = clone->run();
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int i = 0; i < kThreads; ++i) {
        EXPECT_TRUE(results[i].exited);
        EXPECT_EQ(results[i].exitCode, 1);
        EXPECT_EQ(results[i].cycles, results[0].cycles);
    }
}

// ----- log tagging ------------------------------------------------------

TEST(Logging, CloneTagPrefixesOutput)
{
    setVerbose(true);
    setLogCloneTag(5);
    testing::internal::CaptureStderr();
    SHIFT_WARN("from a worker");
    std::string tagged = testing::internal::GetCapturedStderr();
    setLogCloneTag(-1);
    testing::internal::CaptureStderr();
    SHIFT_WARN("from the main thread");
    std::string untagged = testing::internal::GetCapturedStderr();
    setVerbose(false);

    EXPECT_EQ(tagged, "warn: [clone 5] from a worker\n");
    EXPECT_EQ(untagged, "warn: from the main thread\n");
}

} // namespace
} // namespace shift
