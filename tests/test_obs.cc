/**
 * @file
 * The observability plane: flight-recorder rings, Chrome-JSON drains,
 * histogram algebra, metrics exporters, and taint provenance chains.
 *
 * The provenance suite runs every table-2 attack with the recorder on
 * and requires each policy kill to carry a non-empty chain ending at
 * the failing check; the trace-format suite validates the drained
 * JSON with a real parser rather than string probes, since "loads in
 * Perfetto" is the contract.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/exporter.hh"
#include "obs/perfmap.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "session_helpers.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "workloads/attacks.hh"
#include "workloads/httpd.hh"

namespace shift
{
namespace
{

/**
 * A minimal JSON well-formedness checker (recursive descent over the
 * full grammar, values discarded). Returns false instead of throwing
 * so EXPECT output stays readable.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** RAII recorder so a failing test never leaks an active recorder. */
struct ScopedRecorder
{
    explicit ScopedRecorder(obs::RecorderOptions options = {})
    {
        rec = obs::Recorder::enable(options);
    }
    ~ScopedRecorder() { obs::Recorder::disable(); }
    obs::Recorder *rec;
};

// ----- TraceBuffer ------------------------------------------------------

TEST(TraceBuffer, WrapOverwritesOldestAndCountsDrops)
{
    obs::TraceBuffer buf(64, -1);
    EXPECT_EQ(buf.capacity(), 64u);
    for (uint64_t i = 0; i < 100; ++i)
        buf.emit(obs::Ev::TaintStore, 0, -1, i, i);
    EXPECT_EQ(buf.emitted(), 100u);
    EXPECT_EQ(buf.dropped(), 36u);
    EXPECT_EQ(buf.size(), 64u);

    // Retained events are the newest 64, oldest-first.
    std::vector<uint64_t> pcs;
    buf.forEach([&](const obs::TraceEvent &e) { pcs.push_back(e.pc); });
    ASSERT_EQ(pcs.size(), 64u);
    EXPECT_EQ(pcs.front(), 36u);
    EXPECT_EQ(pcs.back(), 99u);
}

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo)
{
    obs::TraceBuffer buf(100, 0);
    EXPECT_EQ(buf.capacity(), 128u);
    obs::TraceBuffer tiny(1, 0);
    EXPECT_EQ(tiny.capacity(), 64u); // floor
}

TEST(TraceBuffer, TaintChainKeepsSourceAcrossEviction)
{
    obs::TraceBuffer buf(256, -1);
    buf.emit(obs::Ev::TaintSource, obs::packChannel("network"), -1, 5,
             0x1000, 32);
    for (uint64_t i = 0; i < 40; ++i)
        buf.emit(obs::Ev::TaintStore, 0, -1, 10 + i, 0x2000 + i);
    buf.emit(obs::Ev::PolicyKill, obs::packPolicyId("H2"), -1, 99);
    std::vector<obs::TraceEvent> chain = buf.taintChain(8);
    ASSERT_FALSE(chain.empty());
    // The source survives the last-8 window; the kill closes the chain.
    EXPECT_EQ(chain.front().kind,
              static_cast<uint16_t>(obs::Ev::TaintSource));
    EXPECT_EQ(chain.back().kind,
              static_cast<uint16_t>(obs::Ev::PolicyKill));
    EXPECT_EQ(chain.back().pc, 99u);
}

TEST(TraceBuffer, NonTaintEventsStayOutOfChains)
{
    obs::TraceBuffer buf(64, -1);
    buf.emit(obs::Ev::FastEnter, 0, 0, 1);
    buf.emit(obs::Ev::CowCopy, 0, 0, 2);
    buf.emit(obs::Ev::JobFork, 0, -1, 0, 7);
    EXPECT_TRUE(buf.taintChain(16).empty());
}

// ----- Histogram --------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 63u);
    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Histogram::bucketLow(3), 4u);
    EXPECT_EQ(Histogram::bucketHigh(3), 7u);
}

TEST(Histogram, QuantilesBracketedByMinMax)
{
    Histogram h;
    for (uint64_t v : {10, 20, 30, 40, 50, 1000})
        h.record(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_GE(h.quantile(0.0), 10u);
    EXPECT_LE(h.quantile(1.0), 1000u);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
    Histogram empty;
    EXPECT_EQ(empty.quantile(0.5), 0u);
}

TEST(Histogram, MergeIsAssociative)
{
    auto fill = [](Histogram &h, uint64_t seed, int n) {
        uint64_t x = seed;
        for (int i = 0; i < n; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            h.record(x >> 40);
        }
    };
    Histogram a, b, c;
    fill(a, 1, 100);
    fill(b, 2, 257);
    fill(c, 3, 33);

    Histogram leftFirst = a;   // (a + b) + c
    leftFirst.merge(b);
    leftFirst.merge(c);
    Histogram rightFirst = b;  // a + (b + c)
    rightFirst.merge(c);
    Histogram result = a;
    result.merge(rightFirst);

    EXPECT_EQ(leftFirst.count(), result.count());
    EXPECT_EQ(leftFirst.sum(), result.sum());
    EXPECT_EQ(leftFirst.min(), result.min());
    EXPECT_EQ(leftFirst.max(), result.max());
    EXPECT_EQ(leftFirst.buckets(), result.buckets());
    EXPECT_EQ(leftFirst.quantile(0.5), result.quantile(0.5));
    EXPECT_EQ(leftFirst.quantile(0.99), result.quantile(0.99));
}

TEST(StatSet, DumpFormatAndMergeShapes)
{
    StatSet a;
    a.add("engine.instrs.total", 10);
    a.setGauge("fleet.workers", 4);
    a.record("fleet.latency.cycles", 100);
    StatSet b;
    b.add("engine.instrs.total", 5);
    b.setGauge("fleet.workers", 2);
    b.record("fleet.latency.cycles", 300);
    a.merge(b);
    EXPECT_EQ(a.get("engine.instrs.total"), 15u);
    EXPECT_EQ(a.gauge("fleet.workers"), 4u); // gauges keep the max
    const Histogram *h = a.histogram("fleet.latency.cycles");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);

    std::string dump = a.dump();
    EXPECT_NE(dump.find("counter engine.instrs.total = 15"),
              std::string::npos);
    EXPECT_NE(dump.find("gauge fleet.workers = 4"), std::string::npos);
    EXPECT_NE(dump.find("hist fleet.latency.cycles count=2"),
              std::string::npos);
}

// ----- exporters --------------------------------------------------------

TEST(Exporter, PrometheusShapes)
{
    StatSet stats;
    stats.add("engine.instrs.total", 42);
    stats.add("fastpath.deopts.main@12", 3);
    stats.add("fastpath.deopts.handle@7", 1);
    stats.setGauge("fleet.workers", 4);
    stats.record("fleet.latency.cycles", 100);
    stats.record("fleet.latency.cycles", 5000);

    std::string text = obs::renderPrometheus(stats);
    EXPECT_NE(text.find("shift_engine_instrs_total 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE shift_fleet_workers gauge"),
              std::string::npos);
    EXPECT_NE(text.find("shift_fleet_workers 4"), std::string::npos);
    // '@'-attributed counters become one labelled family with the
    // site split into {function, pc} labels — '@' is not legal in a
    // Prometheus metric name, and per-site label values keep the
    // family space bounded.
    EXPECT_NE(text.find("shift_fastpath_deopts_total"
                        "{function=\"main\",pc=\"12\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("{function=\"handle\",pc=\"7\"} 1"),
              std::string::npos);
    // Histogram triple with cumulative buckets and +Inf.
    EXPECT_NE(text.find("shift_fleet_latency_cycles_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("shift_fleet_latency_cycles_sum 5100"),
              std::string::npos);
    EXPECT_NE(text.find("shift_fleet_latency_cycles_count 2"),
              std::string::npos);
}

TEST(Exporter, JsonStatsParse)
{
    StatSet stats;
    stats.add("engine.instrs.total", 7);
    stats.setGauge("fleet.workers", 2);
    stats.record("fleet.cow.pages", 12);
    std::string text = obs::renderJsonStats(stats);
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"engine.instrs.total\": 7"), std::string::npos);
}

TEST(Exporter, PeriodicExporterWritesSink)
{
    ConcurrentStatSet live;
    live.add("engine.instrs.total", 9);
    std::string path = ::testing::TempDir() + "obs_metrics_test.txt";

    obs::PeriodicExporter exporter;
    exporter.start(0.01, path, obs::MetricsFormat::Prometheus,
                   [&live] { return live.snapshot(); });
    while (exporter.ticks() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    exporter.stop();
    EXPECT_GE(exporter.ticks(), 2u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("shift_engine_instrs_total 9"),
              std::string::npos);
    std::remove(path.c_str());
}

// ----- recorder + session integration -----------------------------------

/**
 * Reads 48 tainted bytes and copies them repeatedly: every tainted
 * byte store writes its tag, so one run emits a few hundred
 * TaintStore events — enough to wrap a 64-event ring.
 */
constexpr const char *kTaintyProgram = R"MC(
char buf[64];
char out[64];
int main() {
    int fd = open("/in.txt", 0);
    int n = read(fd, buf, 48);
    int pass = 0;
    while (pass < 4) {
        int i = 0;
        while (i < n) {
            out[i] = buf[i];
            i = i + 1;
        }
        pass = pass + 1;
    }
    return n;
}
)MC";

RunResult
runTainty(uint32_t ringEvents)
{
    obs::RecorderOptions options;
    options.ringEvents = ringEvents;
    ScopedRecorder recorder(options);
    return testutil::runShift(kTaintyProgram, Granularity::Byte,
                              [](Session &s) {
                                  s.os().addFile(
                                      "/in.txt",
                                      std::string(48, 'A'));
                              });
}

TEST(Recorder, SessionEmitsEventsIntoStats)
{
    RunResult result = runTainty(1 << 14);
    EXPECT_TRUE(result.exited);
    EXPECT_GT(result.stats.get("obs.events"), 0u);
    EXPECT_EQ(result.stats.get("obs.dropped"), 0u);
}

TEST(Recorder, TinyRingReportsDrops)
{
    RunResult result = runTainty(64);
    EXPECT_TRUE(result.exited);
    // 48 tainted bytes copied through out[] emit > 64 taint stores:
    // the ring wraps and the drop count surfaces as obs.dropped.
    EXPECT_GT(result.stats.get("obs.dropped"), 0u);
}

TEST(Recorder, ChromeJsonIsWellFormed)
{
    ScopedRecorder recorder;
    RunResult result = testutil::runShift(
        kTaintyProgram, Granularity::Byte, [](Session &s) {
            s.os().addFile("/in.txt", std::string(48, 'A'));
        });
    EXPECT_TRUE(result.exited);

    std::ostringstream os;
    recorder.rec->writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid())
        << json.substr(0, 400) << "...";
    // trace_event envelope + the spans/instants we expect.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"compile\""), std::string::npos);
    EXPECT_NE(json.find("\"taint.source\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(Recorder, StatIntoCountsBuffers)
{
    ScopedRecorder recorder;
    obs::TraceBuffer *a = recorder.rec->acquireBuffer(0);
    obs::TraceBuffer *b = recorder.rec->acquireBuffer(1);
    a->emit(obs::Ev::JobFork);
    b->emit(obs::Ev::JobFork);
    b->emit(obs::Ev::JobMerge);
    StatSet stats;
    recorder.rec->statInto(stats);
    EXPECT_EQ(stats.gauge("obs.buffers"), 2u);
    EXPECT_EQ(stats.get("obs.events"), 3u);
    EXPECT_EQ(stats.get("obs.dropped"), 0u);
}

// ----- provenance on the table-2 attacks --------------------------------

TEST(Provenance, EveryAttackKillCarriesAChain)
{
    for (const workloads::AttackScenario &scenario :
         workloads::attackScenarios()) {
        SCOPED_TRACE(scenario.name);
        ScopedRecorder recorder;
        workloads::AttackRun run = workloads::runAttackScenario(
            scenario, /*exploit=*/true, Granularity::Byte);
        ASSERT_TRUE(run.detected) << scenario.expectedPolicy;
        ASSERT_FALSE(run.result.provenance.empty());
        // The chain ends at the failing check: a policy kill whose pc
        // matches the alert the run reported.
        const obs::TraceEvent &last = run.result.provenance.back();
        EXPECT_EQ(last.kind, static_cast<uint16_t>(obs::Ev::PolicyKill));
        ASSERT_FALSE(run.result.alerts.empty());
        EXPECT_EQ(last.pc, run.result.alerts.back().pc);
        EXPECT_EQ(obs::unpackPolicyId(last.aux),
                  run.result.alerts.back().policy);
        // And renders as one line per event.
        std::string text = recorder.rec->renderChain(run.result.provenance);
        EXPECT_NE(text.find("policy.kill"), std::string::npos);
    }
}

// ----- clone-tagged fatal sink ------------------------------------------

TEST(Logging, FatalEmbedsCloneTag)
{
    setLogCloneTag(3);
    EXPECT_EQ(logCloneTag(), 3);
    try {
        SHIFT_FATAL("boom %d", 42);
        FAIL() << "SHIFT_FATAL returned";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("[clone 3]"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("boom 42"),
                  std::string::npos);
    }
    setLogCloneTag(-1);
    try {
        SHIFT_FATAL("quiet");
        FAIL() << "SHIFT_FATAL returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()).find("[clone"),
                  std::string::npos);
    }
}

// ----- tier-attribution profiler ----------------------------------------

/** Resolve func indices the way the tests build them: f<index>. */
std::string
testFuncName(int32_t func)
{
    return func < 0 ? std::string("host") : "f" + std::to_string(func);
}

/** Burn enough host time for a measurable steady_clock interval. */
void
spin()
{
    volatile uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i)
        sink = sink + uint64_t(i);
}

/** A small table with carved, entered and sampled intervals. */
StatSet
makeProfileStats(int seed)
{
    obs::Profiler p;
    p.begin();
    uint64_t t0 = obs::Profiler::nowNanos();
    spin();
    p.carveSince(obs::Tier::AsyncPublish, seed, uint32_t(7 * seed), t0);
    p.enter(obs::Tier::Builtin, seed, 3);
    spin();
    p.enter(obs::Tier::Host, -1, 0);
    spin();
    p.sample(obs::Tier::InterpSlow, 0, uint32_t(seed));
    p.stop();
    StatSet stats;
    p.statInto(stats, testFuncName);
    return stats;
}

uint64_t
profTierSum(const StatSet &stats)
{
    uint64_t sum = 0;
    stats.forEach([&](const std::string &name, uint64_t value) {
        if (name.rfind("prof.tier.", 0) == 0)
            sum += value;
    });
    return sum;
}

TEST(Profiler, AttributionSumsExactlyAcrossTiers)
{
    StatSet stats = makeProfileStats(2);
    uint64_t total = stats.get("prof.total.nanos");
    EXPECT_GT(total, 0u);
    // Every attributed nanosecond lands in exactly one tier bucket:
    // the sum is EXACT, not approximate — the property the profiler's
    // whole accounting model hangs on.
    EXPECT_EQ(profTierSum(stats), total);
    EXPECT_GT(stats.get("prof.tier.async-publish.nanos"), 0u);
    EXPECT_GT(stats.get("prof.tier.builtin.nanos"), 0u);
    // The carved interval kept its {tier, function, pc} tag.
    EXPECT_GT(stats.get("prof.site.async-publish.f2@14.nanos"), 0u);
    EXPECT_EQ(stats.get("prof.samples"), 1u);
}

TEST(Profiler, StatSetMergeOfTablesIsAssociative)
{
    // Fleet merge discipline: per-clone tables fold to prof.* counters
    // and the report is an ordinary StatSet merge, so any merge order
    // must produce the same profile.
    StatSet a = makeProfileStats(1);
    StatSet b = makeProfileStats(2);
    StatSet c = makeProfileStats(3);

    StatSet leftFirst = a; // (a + b) + c
    leftFirst.merge(b);
    leftFirst.merge(c);
    StatSet rightFirst = b; // a + (b + c)
    rightFirst.merge(c);
    StatSet result = a;
    result.merge(rightFirst);

    size_t leftRows = 0;
    leftFirst.forEach([&](const std::string &name, uint64_t value) {
        ++leftRows;
        EXPECT_EQ(result.get(name), value) << name;
    });
    size_t rightRows = 0;
    result.forEach([&](const std::string &, uint64_t) { ++rightRows; });
    EXPECT_EQ(leftRows, rightRows);
    // And the merged profile still reconciles.
    EXPECT_EQ(profTierSum(result), result.get("prof.total.nanos"));
}

TEST(Profiler, SessionProfileTierSumMatchesTotal)
{
    SessionOptions options = testutil::shiftOptions();
    options.profile = true;
    Session session(kTaintyProgram, options);
    session.os().addFile("/in.txt", std::string(48, 'A'));
    RunResult result = session.run();
    EXPECT_TRUE(result.exited);

    uint64_t total = result.stats.get("prof.total.nanos");
    EXPECT_GT(total, 0u);
    EXPECT_EQ(profTierSum(result.stats), total);
    // Site rows carry the <function>@<pc> taxonomy.
    bool sawSite = false;
    result.stats.forEach([&](const std::string &name, uint64_t) {
        if (name.rfind("prof.site.", 0) == 0 &&
            name.find('@') != std::string::npos)
            sawSite = true;
    });
    EXPECT_TRUE(sawSite);
}

TEST(Profiler, FleetCloneTablesMergeIntoReport)
{
    workloads::HttpdFleetConfig config;
    config.jobs = 4;
    config.requestsPerJob = 2;
    config.workers = 2;
    config.profile = true;
    workloads::HttpdFleetRun fleet = workloads::runHttpdFleet(config);
    ASSERT_TRUE(fleet.report.allOk);

    // Four clones, four private tables, one associative StatSet merge:
    // the aggregate must still reconcile tier-for-tier.
    uint64_t total = fleet.report.stats.get("prof.total.nanos");
    EXPECT_GT(total, 0u);
    EXPECT_EQ(profTierSum(fleet.report.stats), total);
}

TEST(Profiler, RenderersParseAndWriteBothFormats)
{
    StatSet stats = makeProfileStats(2);

    std::string json = obs::renderProfileJson(stats);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"totalNanos\""), std::string::npos);

    std::string collapsed = obs::renderProfileCollapsed(stats);
    EXPECT_NE(collapsed.find("shift;async-publish;f2@14 "),
              std::string::npos);

    std::string summary = obs::renderProfileSummary(stats);
    EXPECT_NE(summary.find("async-publish"), std::string::npos);

    // writeProfileFile: extension selects the format.
    std::string cpath = ::testing::TempDir() + "prof_test.collapsed";
    std::string jpath = ::testing::TempDir() + "prof_test.json";
    ASSERT_TRUE(obs::writeProfileFile(stats, cpath));
    ASSERT_TRUE(obs::writeProfileFile(stats, jpath));
    std::ifstream cin(cpath);
    std::stringstream cbody;
    cbody << cin.rdbuf();
    EXPECT_EQ(cbody.str().rfind("shift;", 0), 0u) << cbody.str();
    std::ifstream jin(jpath);
    std::stringstream jbody;
    jbody << jin.rdbuf();
    EXPECT_TRUE(JsonChecker(jbody.str()).valid());
    std::remove(cpath.c_str());
    std::remove(jpath.c_str());
}

TEST(Exporter, SiteLabelsAcrossMetricKinds)
{
    StatSet stats;
    stats.add("prof.site.interp-slow.eval@7.nanos", 40);
    stats.add("prof.site.interp-slow.main@12.nanos", 100);
    stats.setGauge("jit.resident.main@3", 2);
    stats.record("async.fence.lag.main@5.cycles", 64);

    std::string text = obs::renderPrometheus(stats);
    // Counter sites embedded before a unit suffix: the suffix rejoins
    // the family, both sites share one TYPE line.
    const char *family = "# TYPE shift_prof_site_interp_slow_nanos_total";
    size_t first = text.find(family);
    ASSERT_NE(first, std::string::npos) << text;
    EXPECT_EQ(text.find(family, first + 1), std::string::npos);
    EXPECT_NE(text.find("shift_prof_site_interp_slow_nanos_total"
                        "{function=\"eval\",pc=\"7\"} 40"),
              std::string::npos);
    EXPECT_NE(text.find("{function=\"main\",pc=\"12\"} 100"),
              std::string::npos);
    // Gauges split the same way.
    EXPECT_NE(text.find("shift_jit_resident{function=\"main\",pc=\"3\"} 2"),
              std::string::npos);
    // Histograms merge the site labels with le on bucket lines and
    // carry them plain on _sum/_count.
    EXPECT_NE(text.find("shift_async_fence_lag_cycles_bucket"
                        "{function=\"main\",pc=\"5\",le=\""),
              std::string::npos);
    EXPECT_NE(text.find("shift_async_fence_lag_cycles_sum"
                        "{function=\"main\",pc=\"5\"} 64"),
              std::string::npos);
    EXPECT_NE(text.find("shift_async_fence_lag_cycles_count"
                        "{function=\"main\",pc=\"5\"} 1"),
              std::string::npos);
    // No '@' survives anywhere in the rendered text.
    EXPECT_EQ(text.find('@'), std::string::npos) << text;
}

TEST(Exporter, PeriodicExporterStartStopChurn)
{
    ConcurrentStatSet live;
    live.add("engine.instrs.total", 1);
    std::string path = ::testing::TempDir() + "obs_churn_test.txt";

    // Rapid start/stop cycles, half of them stopping before the first
    // interval elapses — the shutdown handshake (cv + final render)
    // is what the TSan tier-2 pass is pointed at.
    obs::PeriodicExporter exporter;
    for (int i = 0; i < 10; ++i) {
        exporter.start(0.001, path, obs::MetricsFormat::Json,
                       [&live] { return live.snapshot(); });
        if (i % 2) {
            uint64_t before = exporter.ticks();
            while (exporter.ticks() == before)
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        exporter.stop();
    }
    // Every stop() renders once more, so ten cycles tick at least ten
    // times.
    EXPECT_GE(exporter.ticks(), 10u);
    std::remove(path.c_str());
}

// ----- JIT symbol sink (perf map / jitdump) -----------------------------

TEST(PerfMap, MapFileListsSymbols)
{
    std::string path = ::testing::TempDir() + "perfmap_test.map";
    ASSERT_TRUE(obs::PerfJitSink::enable(path));
    EXPECT_TRUE(obs::PerfJitSink::active());
    EXPECT_EQ(obs::PerfJitSink::path(), path);

    static const unsigned char code[16] = {0xc3};
    obs::PerfJitSink::add("main@12", code, sizeof(code));
    obs::PerfJitSink::add("main@12.fast", code, sizeof(code));
    obs::PerfJitSink::disable();
    EXPECT_FALSE(obs::PerfJitSink::active());
    EXPECT_EQ(obs::PerfJitSink::path(), "");

    // perf map text format: "<hex addr> <hex size> <name>" per line.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line1;
    std::string line2;
    ASSERT_TRUE(std::getline(in, line1));
    ASSERT_TRUE(std::getline(in, line2));
    uint64_t addr = 0;
    uint64_t size = 0;
    char name[64] = {};
    ASSERT_EQ(std::sscanf(line1.c_str(), "%llx %llx %63s",
                          (unsigned long long *)&addr,
                          (unsigned long long *)&size, name),
              3)
        << line1;
    EXPECT_EQ(addr, (uint64_t)(uintptr_t)code);
    EXPECT_EQ(size, sizeof(code));
    EXPECT_STREQ(name, "main@12");
    EXPECT_NE(line2.find("main@12.fast"), std::string::npos);
    std::remove(path.c_str());
}

TEST(PerfMap, JitdumpCarriesMagicAndPayload)
{
    std::string path = ::testing::TempDir() + "perfmap_test.dump";
    ASSERT_TRUE(obs::PerfJitSink::enable(path));

    static const unsigned char code[16] = {0xc3};
    obs::PerfJitSink::add("handle@7", code, sizeof(code));
    obs::PerfJitSink::disable();

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    uint32_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    EXPECT_EQ(magic, 0x4A695444u); // "JiTD", writer-endian
    in.seekg(0, std::ios::end);
    // Header + one JIT_CODE_LOAD record with name + code payload.
    EXPECT_GT(size_t(in.tellg()),
              sizeof(magic) + std::strlen("handle@7") + sizeof(code));
    std::remove(path.c_str());
}

} // namespace
} // namespace shift
