# CLI flag validation for shiftc / shiftd: every malformed value must
# produce exit status 103 and a clear one-line error on stderr — never
# an uncaught std::invalid_argument, never a silent fallback. Invoked
# by ctest with -DSHIFTC=<path> -DSHIFTD=<path>.

if(NOT DEFINED SHIFTC OR NOT DEFINED SHIFTD)
    message(FATAL_ERROR "pass -DSHIFTC=... and -DSHIFTD=...")
endif()

set(failures 0)

# expect_usage_error(<regex> <binary> <args...>): the run must exit
# 103 with stderr matching <regex>.
function(expect_usage_error regex bin)
    execute_process(
        COMMAND ${bin} ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        TIMEOUT 30)
    get_filename_component(name ${bin} NAME)
    if(NOT rc EQUAL 103)
        message(SEND_ERROR
            "${name} ${ARGN}: expected exit 103, got '${rc}'\n"
            "stderr: ${err}")
        math(EXPR failures "${failures}+1")
        set(failures ${failures} PARENT_SCOPE)
        return()
    endif()
    if(NOT err MATCHES "${regex}")
        message(SEND_ERROR
            "${name} ${ARGN}: stderr does not match '${regex}'\n"
            "stderr: ${err}")
        math(EXPR failures "${failures}+1")
        set(failures ${failures} PARENT_SCOPE)
    endif()
endfunction()

# --- shiftd: worker/clone counts, intervals, ring sizes ---------------
expect_usage_error("jobs and --requests must be positive"
    ${SHIFTD} --jobs 0)
expect_usage_error("jobs and --requests must be positive"
    ${SHIFTD} --requests -3)
expect_usage_error("expected an integer"
    ${SHIFTD} --jobs banana)
expect_usage_error("workers must be positive"
    ${SHIFTD} --workers 0)
expect_usage_error("expected a number of seconds"
    ${SHIFTD} --metrics-interval often)
expect_usage_error("metrics-interval must not be negative"
    ${SHIFTD} --metrics-interval -1)
expect_usage_error("max-steps must be positive"
    ${SHIFTD} --max-steps 0)
expect_usage_error("power of two"
    ${SHIFTD} --async-taint=5000)
expect_usage_error("ring size"
    ${SHIFTD} --async-taint=1000)
expect_usage_error("ring size"
    ${SHIFTD} --async-taint=0)
expect_usage_error("expected an integer"
    ${SHIFTD} --async-taint=big)
expect_usage_error("async-batch must be positive"
    ${SHIFTD} --async-batch 0)
expect_usage_error("publish batch"
    ${SHIFTD} --async-taint --async-batch 999999999)
expect_usage_error("expected thread, inline, or auto"
    ${SHIFTD} --async-consumer sidecar)
expect_usage_error("missing value after --async-consumer"
    ${SHIFTD} --async-consumer)
expect_usage_error("promotion threshold"
    ${SHIFTD} --jit=0)
expect_usage_error("promotion threshold"
    ${SHIFTD} --jit=-7)
expect_usage_error("expected an integer"
    ${SHIFTD} --jit=warm)
expect_usage_error("expected sync or bg"
    ${SHIFTD} --jit-compile=eager)
expect_usage_error("expected sync or bg"
    ${SHIFTD} --jit-compile threaded)
expect_usage_error("missing value after --jit-compile"
    ${SHIFTD} --jit-compile)
expect_usage_error("expected a file path"
    ${SHIFTD} --profile=)
expect_usage_error("expected a file path"
    ${SHIFTD} --jitdump=)

# --- shiftc -----------------------------------------------------------
expect_usage_error("max-steps must be positive"
    ${SHIFTC} --max-steps -5 prog.mc)
expect_usage_error("expected an integer"
    ${SHIFTC} --itrace xyz prog.mc)
expect_usage_error("itrace must not be negative"
    ${SHIFTC} --itrace -1 prog.mc)
expect_usage_error("power of two"
    ${SHIFTC} --async-taint=12345 prog.mc)
expect_usage_error("async-batch must be positive"
    ${SHIFTC} --async-batch -1 prog.mc)
expect_usage_error("unknown option"
    ${SHIFTC} --async prog.mc)
expect_usage_error("expected thread, inline, or auto"
    ${SHIFTC} --async-consumer coprocessor prog.mc)
expect_usage_error("promotion threshold"
    ${SHIFTC} --jit=0 prog.mc)
expect_usage_error("promotion threshold"
    ${SHIFTC} --jit=2000000000 prog.mc)
expect_usage_error("expected an integer"
    ${SHIFTC} --jit=hot prog.mc)
expect_usage_error("expected sync or bg"
    ${SHIFTC} --jit-compile=async prog.mc)
expect_usage_error("missing value after --jit-compile"
    ${SHIFTC} --jit-compile)
expect_usage_error("expected a file path"
    ${SHIFTC} --profile= prog.mc)
expect_usage_error("expected a file path"
    ${SHIFTC} --jitdump= prog.mc)

if(failures GREATER 0)
    message(FATAL_ERROR "${failures} CLI validation case(s) failed")
endif()
message(STATUS "CLI validation: all cases rejected with clear errors")
