/**
 * @file
 * Shared helpers for tests that run MiniC programs through Session.
 */

#ifndef SHIFT_TESTS_SESSION_HELPERS_HH
#define SHIFT_TESTS_SESSION_HELPERS_HH

#include <string>

#include "runtime/session.hh"

namespace shift::testutil
{

/** Default policy: all sources tainted, all low-level policies on. */
inline PolicyConfig
defaultPolicy(Granularity granularity = Granularity::Byte)
{
    PolicyConfig policy;
    policy.granularity = granularity;
    return policy;
}

/** Build options for a SHIFT-tracked run. */
inline SessionOptions
shiftOptions(Granularity granularity = Granularity::Byte)
{
    SessionOptions options;
    options.mode = TrackingMode::Shift;
    options.policy = defaultPolicy(granularity);
    return options;
}

/** Run a program under SHIFT and return the result. */
inline RunResult
runShift(const std::string &source,
         Granularity granularity = Granularity::Byte,
         std::function<void(Session &)> setup = {})
{
    Session session(source, shiftOptions(granularity));
    if (setup)
        setup(session);
    return session.run();
}

/** Expect a clean exit with the given code. */
#define EXPECT_EXIT_CODE(result, code) \
    do { \
        EXPECT_TRUE((result).exited) \
            << "fault: " << faultKindName((result).fault.kind) << " (" \
            << (result).fault.detail << ") alerts=" \
            << (result).alerts.size() \
            << ((result).alerts.empty() ? "" \
                                        : " [" + (result).alerts[0].policy + \
                                              ": " + \
                                              (result).alerts[0].message + \
                                              "]"); \
        EXPECT_EQ((result).exitCode, (code)); \
        EXPECT_TRUE((result).alerts.empty()); \
    } while (0)

/** Expect the run to have been stopped by the named policy. */
#define EXPECT_POLICY_KILL(result, policyName) \
    do { \
        EXPECT_TRUE((result).killedByPolicy) \
            << "exited=" << (result).exited << " code=" \
            << (result).exitCode << " fault=" \
            << faultKindName((result).fault.kind) << " (" \
            << (result).fault.detail << ")"; \
        ASSERT_FALSE((result).alerts.empty()); \
        EXPECT_EQ((result).alerts.back().policy, (policyName)) \
            << (result).alerts.back().message; \
    } while (0)

} // namespace shift::testutil

#endif // SHIFT_TESTS_SESSION_HELPERS_HH
