/**
 * @file
 * SPEC-kernel correctness: every kernel computes the same checksum
 * under every tracking configuration (original, SHIFT byte/word with
 * safe and unsafe input, enhanced hardware, software baseline) with no
 * faults and no alerts — the figure-7 measurements are only meaningful
 * if the instrumented programs still compute the right answers.
 */

#include <gtest/gtest.h>

#include "workloads/spec.hh"

namespace shift
{
namespace
{

using workloads::SpecKernel;
using workloads::specKernels;
using workloads::SpecRun;
using workloads::SpecRunConfig;
using workloads::runSpecKernel;

class SpecKernelTest
    : public ::testing::TestWithParam<const SpecKernel *>
{
};

std::vector<const SpecKernel *>
allKernels()
{
    std::vector<const SpecKernel *> out;
    for (const SpecKernel &k : specKernels())
        out.push_back(&k);
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SpecKernelTest,
                         ::testing::ValuesIn(allKernels()),
                         [](const auto &info) {
                             return info.param->shortName;
                         });

void
expectClean(const SpecRun &run, const std::string &what)
{
    EXPECT_TRUE(run.result.exited)
        << what << ": fault=" << faultKindName(run.result.fault.kind)
        << " fn=" << run.result.fault.function << " pc="
        << run.result.fault.pc << " (" << run.result.fault.detail << ")"
        << (run.result.alerts.empty()
                ? ""
                : " alert=" + run.result.alerts.back().policy + ": " +
                      run.result.alerts.back().message);
    EXPECT_TRUE(run.result.alerts.empty())
        << what << ": " << run.result.alerts.back().policy << ": "
        << run.result.alerts.back().message;
    EXPECT_NE(run.result.exitCode, 255) << what << ": input missing";
    EXPECT_NE(run.result.exitCode, 254) << what << ": self-check failed";
    EXPECT_NE(run.result.exitCode, 253) << what << ": self-check failed";
}

TEST_P(SpecKernelTest, AllConfigurationsAgree)
{
    const SpecKernel &kernel = *GetParam();

    SpecRunConfig original;
    original.mode = TrackingMode::None;
    SpecRun base = runSpecKernel(kernel, original);
    expectClean(base, kernel.name + "/original");

    struct Variant
    {
        const char *name;
        SpecRunConfig config;
    };
    std::vector<Variant> variants;
    for (Granularity g : {Granularity::Byte, Granularity::Word}) {
        for (bool unsafe : {true, false}) {
            SpecRunConfig config;
            config.mode = TrackingMode::Shift;
            config.granularity = g;
            config.taintInput = unsafe;
            variants.push_back({"shift", config});
        }
    }
    {
        SpecRunConfig config;
        config.mode = TrackingMode::Shift;
        config.features.natSetClear = true;
        config.features.natAwareCompare = true;
        variants.push_back({"shift-enhanced", config});
    }
    {
        SpecRunConfig config;
        config.mode = TrackingMode::SoftwareDift;
        variants.push_back({"baseline", config});
    }

    for (const Variant &variant : variants) {
        SpecRun run = runSpecKernel(kernel, variant.config);
        expectClean(run, kernel.name + "/" + variant.name);
        EXPECT_EQ(run.result.exitCode, base.result.exitCode)
            << kernel.name << "/" << variant.name;
        // Tracked runs execute strictly more instructions.
        EXPECT_GT(run.result.instructions, base.result.instructions)
            << kernel.name << "/" << variant.name;
    }
}

TEST_P(SpecKernelTest, InstrumentationExpandsCode)
{
    const SpecKernel &kernel = *GetParam();
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    config.granularity = Granularity::Byte;
    SpecRun run = runSpecKernel(kernel, config);
    EXPECT_GT(run.instrStats.newSize, run.instrStats.originalSize);
    EXPECT_GT(run.instrStats.loads, 0u);
    EXPECT_GT(run.instrStats.stores, 0u);
    EXPECT_GT(run.instrStats.compares, 0u);
}

TEST(SpecSuite, HasEightKernels)
{
    EXPECT_EQ(specKernels().size(), 8u);
}

TEST(SpecSuite, RunsAreDeterministic)
{
    // EXPERIMENTS.md promises bit-identical reruns: inputs come from
    // fixed seeds and the simulator has no hidden entropy.
    const workloads::SpecKernel &kernel = workloads::specKernel("mcf");
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    SpecRun a = runSpecKernel(kernel, config);
    SpecRun b = runSpecKernel(kernel, config);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(a.result.exitCode, b.result.exitCode);
}

TEST(SpecSuite, ProvenanceCyclesSumToCpuCycles)
{
    // The figure 8/9 accounting must partition, not sample: the
    // per-provenance buckets have to add up to the CPU total.
    const workloads::SpecKernel &kernel =
        workloads::specKernel("parser");
    SpecRunConfig config;
    config.mode = TrackingMode::Shift;
    SpecRun run = runSpecKernel(kernel, config);
    const StatSet &st = run.result.stats;
    uint64_t sum = 0;
    for (const char *prov : {"original", "natgen", "tagaddr", "tagmem",
                             "tagreg", "relax", "check", "baseline"}) {
        sum += st.get(std::string("engine.cycles.") + prov);
    }
    EXPECT_EQ(sum, st.get("engine.cycles.cpu"));
    EXPECT_EQ(st.get("engine.cycles.cpu") + st.get("engine.cycles.os"),
              st.get("engine.cycles.total"));
}

} // namespace
} // namespace shift
