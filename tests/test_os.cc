/**
 * @file
 * Simulated-OS tests: files, sockets, stdout, the input hook, and the
 * I/O cost model, driven through runtime built-ins.
 */

#include <gtest/gtest.h>

#include "runtime/session.hh"

namespace shift
{
namespace
{

SessionOptions
plain()
{
    SessionOptions options;
    options.mode = TrackingMode::None;
    return options;
}

TEST(Os, FileReadWriteRoundTrip)
{
    Session session(
        "char buf[64];"
        "int main() {"
        "  int in = open(\"a.txt\", 0);"
        "  int n = read(in, buf, 63);"
        "  close(in);"
        "  int out = open(\"b.txt\", 1);"
        "  write(out, buf, n);"
        "  close(out);"
        "  return n;"
        "}",
        plain());
    session.os().addFile("a.txt", "payload!");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 8);
    const auto &bytes = session.os().fileBytes("b.txt");
    EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "payload!");
}

TEST(Os, MissingFileReturnsError)
{
    Session session("int main() { return open(\"nope\", 0); }", plain());
    RunResult r = session.run();
    EXPECT_EQ(r.exitCode, -1);
}

TEST(Os, ReadBeyondEofReturnsZero)
{
    Session session(
        "char buf[16];"
        "int main() {"
        "  int fd = open(\"f\", 0);"
        "  int a = read(fd, buf, 16);"
        "  int b = read(fd, buf, 16);"
        "  int c = read(fd, buf, 16);"
        "  return a * 100 + b * 10 + c;"
        "}",
        plain());
    session.os().addFile("f", "abc");
    RunResult r = session.run();
    EXPECT_EQ(r.exitCode, 300);
}

TEST(Os, BadFdOperationsFail)
{
    Session session(
        "char buf[8];"
        "int main() {"
        "  int a = read(42, buf, 8);"
        "  int b = write(42, buf, 8);"
        "  int c = close(42);"
        "  return (a == -1) + (b == -1) + (c == -1);"
        "}",
        plain());
    RunResult r = session.run();
    EXPECT_EQ(r.exitCode, 3);
}

TEST(Os, SocketsDeliverRequestsAndCollectResponses)
{
    Session session(
        "char buf[64];"
        "int main() {"
        "  int served = 0;"
        "  int conn = accept();"
        "  while (conn >= 0) {"
        "    int n = recv(conn, buf, 63);"
        "    buf[n] = 0;"
        "    send(conn, \"echo:\", 5);"
        "    send(conn, buf, n);"
        "    close(conn);"
        "    served++;"
        "    conn = accept();"
        "  }"
        "  return served;"
        "}",
        plain());
    session.os().queueConnection("one");
    session.os().queueConnection("two");
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 2);
    ASSERT_EQ(session.os().responses().size(), 2u);
    EXPECT_EQ(session.os().responses()[0], "echo:one");
    EXPECT_EQ(session.os().responses()[1], "echo:two");
}

TEST(Os, StdoutCapture)
{
    Session session(
        "int main() { print(\"hello \"); print_num(42);"
        " print(\"\\n\"); return 0; }",
        plain());
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(session.os().stdoutText(), "hello 42\n");
}

TEST(Os, InputHookSeesChannelAndRange)
{
    Session session(
        "char buf[32];"
        "int main() {"
        "  int fd = open(\"f\", 0);"
        "  read(fd, buf, 5);"
        "  int conn = accept();"
        "  recv(conn, buf, 3);"
        "  return 0;"
        "}",
        plain());
    session.os().addFile("f", "12345");
    session.os().queueConnection("abc");
    std::vector<std::pair<std::string, uint64_t>> seen;
    session.os().setInputHook([&](Machine &, uint64_t, uint64_t len,
                                  const std::string &channel) {
        seen.emplace_back(channel, len);
    });
    RunResult r = session.run();
    ASSERT_TRUE(r.exited);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], std::make_pair(std::string("file"),
                                      uint64_t(5)));
    EXPECT_EQ(seen[1], std::make_pair(std::string("network"),
                                      uint64_t(3)));
}

TEST(Os, IoCostsAreCharged)
{
    auto cyclesFor = [](uint64_t fileSize) {
        Session session(
            "char buf[8192];"
            "int main() {"
            "  int fd = open(\"f\", 0);"
            "  int total = 0;"
            "  int n = read(fd, buf, 8192);"
            "  while (n > 0) { total += n; n = read(fd, buf, 8192); }"
            "  return total & 127;"
            "}",
            plain());
        session.os().addFile("f", std::string(fileSize, 'x'));
        RunResult r = session.run();
        EXPECT_TRUE(r.exited);
        return r.cycles;
    };
    uint64_t small = cyclesFor(1024);
    uint64_t large = cyclesFor(64 * 1024);
    EXPECT_GT(large, small + 20000); // per-byte I/O cost is visible
}

TEST(Os, MallocAndFree)
{
    Session session(
        "int main() {"
        "  char *a = malloc(100);"
        "  char *b = malloc(100);"
        "  if (b <= a) return 1;"
        "  a[0] = 7; a[99] = 8; b[0] = 9;"
        "  int ok = (a[0] == 7) + (a[99] == 8) + (b[0] == 9);"
        "  free(a); free(b);"
        "  return ok;"
        "}",
        plain());
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(r.exitCode, 3);
}

TEST(Os, SprintfFormatting)
{
    Session session(
        "char out[128];"
        "int main() {"
        "  int n = sprintf(out, \"%s=%d c=%c hex=%x %%\","
        "                  \"key\", -42, 'Z', 255);"
        "  print(out);"
        "  return n;"
        "}",
        plain());
    RunResult r = session.run();
    ASSERT_TRUE(r.exited) << faultKindName(r.fault.kind);
    EXPECT_EQ(session.os().stdoutText(), "key=-42 c=Z hex=ff %");
}

} // namespace
} // namespace shift
