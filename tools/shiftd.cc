/**
 * @file
 * shiftd — fleet batch driver: compile once, serve many clones.
 *
 * Builds a SessionTemplate from a MiniC program (or the built-in httpd
 * server when no program is given), provisions files and a request,
 * then serves N jobs of R connections each across M worker threads,
 * every job running in an isolated copy-on-write clone:
 *
 *   shiftd --jobs 16 --requests 4 --workers 4
 *   shiftd --policy policy.ini --filetext /www/x.html=hi \
 *          --conn "GET /x.html HTTP/1.0" --jobs 8 server.mc
 *
 * Prints the aggregate FleetReport (throughput, simulated latency
 * percentiles, detections); --json emits it machine-readably. Exit
 * status: 0 when every job ran clean, 101 when any clone was killed
 * by policy, 102 when any clone faulted, 103 for usage errors.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/exporter.hh"
#include "obs/perfmap.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "runtime/session_template.hh"
#include "support/logging.hh"
#include "svc/fleet.hh"
#include "workloads/httpd.hh"

using namespace shift;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: shiftd [options] [program.mc]\n"
        "  --policy FILE            policy configuration (INI)\n"
        "  --mode none|shift|software   tracking mode (default shift)\n"
        "  --granularity byte|word  bitmap granularity\n"
        "  --enhanced               setnat/clrnat + cmp.nat hardware\n"
        "  --file SIM=HOST          provision a simulated file from a "
        "host file\n"
        "  --filetext SIM=TEXT      provision a simulated file inline\n"
        "  --conn TEXT              the request each connection carries\n"
        "  --jobs N                 clones to fork (default 8)\n"
        "  --requests N             connections per clone (default 4)\n"
        "  --workers N              worker threads (default 4)\n"
        "  --max-steps N            execution budget per clone\n"
        "  --async-taint[=RING]     decoupled taint tier, one event "
        "ring + consumer thread per clone (power-of-two RING size, "
        "default 65536)\n"
        "  --async-batch N          events per sequence publish "
        "(default 32)\n"
        "  --async-consumer MODE    consumer placement: thread, "
        "inline, or auto (default auto: inline on single-hart hosts)\n"
        "  --jit[=THRESHOLD]        compile hot superblocks to host "
        "code after THRESHOLD executions per clone (default 32; "
        "no-op on non-x86-64 hosts)\n"
        "  --jit-compile MODE       sync (compile on the serving "
        "thread, default) or bg (worker thread + atomic install)\n"
        "  --jit-lazy               compile one superblock at a time "
        "on first hot entry instead of whole functions\n"
        "  --profile[=PATH]         tier-attribution profiler: each "
        "clone carries its own table, the report merges them; prints "
        "a per-tier summary, with PATH also writes the full report "
        "(collapsed stacks when PATH ends in .collapsed or .folded, "
        "JSON otherwise)\n"
        "  --jitdump[=PATH]         publish JIT symbols for host "
        "`perf`: /tmp/perf-<pid>.map by default, binary jitdump when "
        "PATH ends in .dump\n"
        "  --json                   print the report as JSON "
        "(includes the stats schema)\n"
        "  --trace FILE             record a flight-recorder trace "
        "(Chrome JSON, Perfetto-loadable)\n"
        "  --metrics-interval N     export live metrics every N "
        "seconds while serving\n"
        "  --metrics-out PATH       metrics sink: a file rewritten "
        "each tick, or '-' for stderr (default)\n"
        "With no program, serves the built-in httpd workload.\n");
}

std::string
readHostFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SHIFT_FATAL("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::pair<std::string, std::string>
splitKeyValue(const std::string &arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos)
        SHIFT_FATAL("expected KEY=VALUE, got '%s'", arg.c_str());
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/** Whole-string integer parse; a clear one-line error beats an
 * uncaught std::invalid_argument from a bare std::stoi. */
long long
parseInteger(const std::string &flag, const std::string &text)
{
    try {
        size_t pos = 0;
        long long v = std::stoll(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        SHIFT_FATAL("%s: expected an integer, got '%s'", flag.c_str(),
                    text.c_str());
    }
}

double
parseSeconds(const std::string &flag, const std::string &text)
{
    try {
        size_t pos = 0;
        double v = std::stod(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        SHIFT_FATAL("%s: expected a number of seconds, got '%s'",
                    flag.c_str(), text.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    SessionOptions options;
    std::string sourcePath;
    std::vector<std::pair<std::string, std::string>> files;
    std::string request;
    int jobs = 8;
    int requestsPerJob = 4;
    unsigned workers = 4;
    bool json = false;
    std::string tracePath;
    std::string profilePath;
    bool jitdump = false;
    std::string jitdumpPath;
    double metricsInterval = 0;
    std::string metricsOut = "-";

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    SHIFT_FATAL("missing value after %s", arg.c_str());
                return argv[i];
            };
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--policy") {
                options.policy =
                    PolicyConfig::fromConfig(Config::parseFile(next()));
            } else if (arg == "--mode") {
                std::string mode = next();
                if (mode == "none")
                    options.mode = TrackingMode::None;
                else if (mode == "shift")
                    options.mode = TrackingMode::Shift;
                else if (mode == "software")
                    options.mode = TrackingMode::SoftwareDift;
                else
                    SHIFT_FATAL("unknown mode '%s'", mode.c_str());
            } else if (arg == "--granularity") {
                std::string g = next();
                if (g == "byte")
                    options.policy.granularity = Granularity::Byte;
                else if (g == "word")
                    options.policy.granularity = Granularity::Word;
                else
                    SHIFT_FATAL("unknown granularity '%s'", g.c_str());
            } else if (arg == "--enhanced") {
                options.features.natSetClear = true;
                options.features.natAwareCompare = true;
            } else if (arg == "--file") {
                auto [sim, host] = splitKeyValue(next());
                files.emplace_back(sim, readHostFile(host));
            } else if (arg == "--filetext") {
                files.push_back(splitKeyValue(next()));
            } else if (arg == "--conn") {
                request = next();
            } else if (arg == "--jobs") {
                jobs = static_cast<int>(parseInteger(arg, next()));
            } else if (arg == "--requests") {
                requestsPerJob =
                    static_cast<int>(parseInteger(arg, next()));
            } else if (arg == "--workers") {
                long long n = parseInteger(arg, next());
                if (n <= 0)
                    SHIFT_FATAL("--workers must be positive");
                workers = static_cast<unsigned>(n);
            } else if (arg == "--max-steps") {
                long long n = parseInteger(arg, next());
                if (n <= 0)
                    SHIFT_FATAL("--max-steps must be positive");
                options.maxSteps = static_cast<uint64_t>(n);
            } else if (arg == "--async-taint" ||
                       arg.rfind("--async-taint=", 0) == 0) {
                options.async.enabled = true;
                if (arg.size() > 13) {
                    long long ring =
                        parseInteger("--async-taint", arg.substr(14));
                    if (ring <= 0 || ring > (1 << 24))
                        SHIFT_FATAL("--async-taint: ring size %lld out "
                                    "of range", ring);
                    options.async.ringEvents =
                        static_cast<uint32_t>(ring);
                }
            } else if (arg == "--async-batch") {
                long long batch = parseInteger(arg, next());
                if (batch <= 0)
                    SHIFT_FATAL("--async-batch must be positive");
                options.async.publishBatch =
                    static_cast<uint32_t>(batch);
            } else if (arg == "--async-consumer") {
                std::string mode = next();
                if (mode == "thread")
                    options.async.consumer = dift::AsyncConsumer::Thread;
                else if (mode == "inline")
                    options.async.consumer = dift::AsyncConsumer::Inline;
                else if (mode == "auto")
                    options.async.consumer = dift::AsyncConsumer::Auto;
                else
                    SHIFT_FATAL("--async-consumer: expected thread, "
                                "inline, or auto, got '%s'",
                                mode.c_str());
            } else if (arg == "--jit" || arg.rfind("--jit=", 0) == 0) {
                options.jit = true;
                if (arg.size() > 5) {
                    long long threshold =
                        parseInteger("--jit", arg.substr(6));
                    if (threshold <= 0 || threshold > (1 << 30))
                        SHIFT_FATAL("--jit: promotion threshold %lld "
                                    "out of range", threshold);
                    options.jitThreshold =
                        static_cast<uint32_t>(threshold);
                }
            } else if (arg.rfind("--jit-compile=", 0) == 0 ||
                       arg == "--jit-compile") {
                std::string mode =
                    arg == "--jit-compile" ? next() : arg.substr(14);
                if (mode == "sync")
                    options.jitBackground = false;
                else if (mode == "bg")
                    options.jitBackground = true;
                else
                    SHIFT_FATAL("--jit-compile: expected sync or bg, "
                                "got '%s'", mode.c_str());
            } else if (arg == "--jit-lazy") {
                options.jitLazy = true;
            } else if (arg == "--profile" ||
                       arg.rfind("--profile=", 0) == 0) {
                options.profile = true;
                if (arg.size() > 9) {
                    profilePath = arg.substr(10);
                    if (profilePath.empty())
                        SHIFT_FATAL("--profile=: expected a file path");
                }
            } else if (arg == "--jitdump" ||
                       arg.rfind("--jitdump=", 0) == 0) {
                jitdump = true;
                if (arg.size() > 9) {
                    jitdumpPath = arg.substr(10);
                    if (jitdumpPath.empty())
                        SHIFT_FATAL("--jitdump=: expected a file path");
                }
            } else if (arg == "--json") {
                json = true;
            } else if (arg == "--trace") {
                tracePath = next();
            } else if (arg == "--metrics-interval") {
                metricsInterval = parseSeconds(arg, next());
                if (metricsInterval < 0)
                    SHIFT_FATAL("--metrics-interval must not be "
                                "negative");
            } else if (arg == "--metrics-out") {
                metricsOut = next();
            } else if (!arg.empty() && arg[0] == '-') {
                SHIFT_FATAL("unknown option '%s'", arg.c_str());
            } else if (sourcePath.empty()) {
                sourcePath = arg;
            } else {
                SHIFT_FATAL("more than one program given");
            }
        }
        if (jobs <= 0 || requestsPerJob <= 0)
            SHIFT_FATAL("--jobs and --requests must be positive");
        if (options.async.enabled) {
            std::string problem =
                dift::validateAsyncOptions(options.async);
            if (!problem.empty())
                SHIFT_FATAL("--async-taint: %s", problem.c_str());
        }

        // Enable the flight recorder before the template build so the
        // compile/instrument/freeze phases land in the trace too.
        if (!tracePath.empty())
            obs::Recorder::enable();
        // The symbol sink likewise precedes the template: the shared
        // code cache seals as clones heat up, on any worker thread.
        if (jitdump)
            obs::PerfJitSink::enable(jitdumpPath);

        // Build the template: a user program, or the built-in httpd
        // workload (its policy/request defaults) when none is given.
        std::unique_ptr<SessionTemplate> tmpl;
        if (sourcePath.empty()) {
            workloads::HttpdFleetConfig defaults;
            SessionOptions httpdOptions = workloads::httpdSessionOptions(
                options.mode, options.policy.granularity,
                options.features, options.engine);
            httpdOptions.maxSteps = options.maxSteps;
            httpdOptions.async = options.async;
            httpdOptions.jit = options.jit;
            httpdOptions.jitThreshold = options.jitThreshold;
            httpdOptions.jitBackground = options.jitBackground;
            httpdOptions.jitLazy = options.jitLazy;
            httpdOptions.profile = options.profile;
            tmpl = std::make_unique<SessionTemplate>(
                std::string(workloads::kHttpdSource),
                std::move(httpdOptions));
            workloads::provisionHttpdOs(tmpl->os(), defaults.fileSize);
            if (request.empty())
                request = workloads::kHttpdRequest;
        } else {
            tmpl = std::make_unique<SessionTemplate>(
                readHostFile(sourcePath), std::move(options));
        }
        for (auto &[sim, contents] : files)
            tmpl->os().addFile(sim, contents);

        std::vector<svc::FleetJob> jobList;
        for (int j = 0; j < jobs; ++j) {
            svc::FleetJob job;
            job.id = j;
            if (!request.empty()) {
                for (int r = 0; r < requestsPerJob; ++r)
                    job.requests.push_back(request);
            }
            jobList.push_back(std::move(job));
        }

        svc::FleetOptions fleetOptions;
        fleetOptions.workers = workers;

        // Live metrics: workers fold each finished job into `live`,
        // the exporter snapshots it on a timer — so a long run is
        // observable while it executes, not only at the end.
        ConcurrentStatSet live;
        obs::PeriodicExporter exporter;
        if (metricsInterval > 0) {
            fleetOptions.live = &live;
            exporter.start(metricsInterval, metricsOut,
                           obs::MetricsFormat::Prometheus,
                           [&live] { return live.snapshot(); });
        }

        svc::Fleet fleet(*tmpl, fleetOptions);
        svc::FleetReport report = fleet.serve(jobList);
        exporter.stop();

        if (json) {
            std::printf(
                "{\"jobs\": %zu, \"requests\": %zu, \"workers\": %u,\n"
                " \"detections\": %zu, \"all_ok\": %s,\n"
                " \"total_sim_cycles\": %llu,\n"
                " \"p50_latency_cycles\": %llu, "
                "\"p99_latency_cycles\": %llu,\n"
                " \"host_seconds\": %.6f, "
                "\"requests_per_host_second\": %.1f,\n"
                " \"snapshot_pages\": %zu,\n"
                " \"stats\":\n%s}\n",
                report.jobs, report.requests, workers, report.detections,
                report.allOk ? "true" : "false",
                static_cast<unsigned long long>(report.totalSimCycles),
                static_cast<unsigned long long>(report.p50LatencyCycles),
                static_cast<unsigned long long>(report.p99LatencyCycles),
                report.hostSeconds, report.requestsPerHostSecond,
                tmpl->snapshotPages(),
                obs::renderJsonStats(report.stats, 1).c_str());
        } else {
            std::printf("fleet: %zu jobs, %zu requests, %u workers\n",
                        report.jobs, report.requests, workers);
            std::printf("  snapshot: %zu pages shared per clone\n",
                        tmpl->snapshotPages());
            std::printf("  latency p50/p99: %llu / %llu cycles\n",
                        static_cast<unsigned long long>(
                            report.p50LatencyCycles),
                        static_cast<unsigned long long>(
                            report.p99LatencyCycles));
            std::printf("  throughput: %.1f requests/host-second "
                        "(%.3fs total)\n",
                        report.requestsPerHostSecond, report.hostSeconds);
            std::printf("  detections: %zu, all ok: %s\n",
                        report.detections,
                        report.allOk ? "yes" : "no");
        }

        // The fleet report's stats are the StatSet merge of every
        // clone's run, so the profile renders from the same schema a
        // single-run shiftc profile does — just summed across clones.
        if (tmpl->options().profile) {
            std::fprintf(stderr, "%s",
                         obs::renderProfileSummary(report.stats).c_str());
            if (!profilePath.empty())
                obs::writeProfileFile(report.stats, profilePath);
        }
        if (jitdump) {
            std::fprintf(stderr, "jit symbols: %s\n",
                         obs::PerfJitSink::path().c_str());
            obs::PerfJitSink::disable();
        }

        bool killed = false;
        bool faulted = false;
        obs::Recorder *rec = obs::Recorder::active();
        for (const svc::FleetJobResult &jr : report.jobResults) {
            killed = killed || jr.result.killedByPolicy;
            faulted = faulted || static_cast<bool>(jr.result.fault);
            for (const SecurityAlert &alert : jr.result.alerts) {
                std::fprintf(stderr, "job %d ALERT %s: %s\n", jr.id,
                             alert.policy.c_str(), alert.message.c_str());
            }
            if (rec && !jr.result.provenance.empty()) {
                std::fprintf(
                    stderr, "job %d taint provenance:\n%s", jr.id,
                    rec->renderChain(jr.result.provenance).c_str());
            }
        }
        if (rec) {
            rec->writeChromeJsonFile(tracePath);
            obs::Recorder::disable();
        }
        if (killed)
            return 101;
        if (faulted)
            return 102;
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "shiftd: %s\n", e.what());
        return 103;
    }
}
