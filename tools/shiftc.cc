/**
 * @file
 * shiftc — command-line driver for the SHIFT pipeline.
 *
 * Compiles a MiniC program, applies the selected tracking mode, runs
 * it on the simulated machine and reports the outcome:
 *
 *   shiftc program.mc
 *   shiftc --policy policy.ini --granularity word program.mc
 *   shiftc --mode none --disasm program.mc
 *   shiftc --filetext input.txt="hello" --conn "GET / HTTP/1.0" app.mc
 *
 * Exit status: the simulated program's exit code for clean runs, 101
 * for a policy kill, 102 for a hardware fault, 103 for usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/perfmap.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "runtime/session.hh"
#include "support/logging.hh"

using namespace shift;

namespace
{

void
usage()
{
    std::fprintf(stderr,
        "usage: shiftc [options] program.mc\n"
        "  --policy FILE            policy configuration (INI)\n"
        "  --mode none|shift|software   tracking mode "
        "(default shift)\n"
        "  --granularity byte|word  bitmap granularity\n"
        "  --enhanced               setnat/clrnat + cmp.nat hardware\n"
        "  --speculate              control-speculation optimizer\n"
        "  --relax-loads f1,f2      per-function load relax rules\n"
        "  --relax-stores f1,f2     per-function store relax rules\n"
        "  --file SIM=HOST          provision a simulated file from a "
        "host file\n"
        "  --filetext SIM=TEXT      provision a simulated file inline\n"
        "  --conn TEXT              queue a network connection\n"
        "  --disasm                 print the final code and exit\n"
        "  --stats                  dump cycle counters after the run\n"
        "  --itrace N               print the first N instructions "
        "executed\n"
        "  --trace FILE             record a flight-recorder trace "
        "(Chrome JSON, Perfetto-loadable)\n"
        "  --max-steps N            execution budget\n"
        "  --async-taint[=RING]     decoupled taint tier: stream "
        "events to a consumer thread (power-of-two RING size, "
        "default 65536)\n"
        "  --async-batch N          events per sequence publish "
        "(default 32)\n"
        "  --async-consumer MODE    consumer placement: thread, "
        "inline, or auto (default auto: inline on single-hart "
        "hosts)\n"
        "  --jit[=THRESHOLD]        compile hot superblocks to host "
        "code after THRESHOLD executions (default 32; no-op on "
        "non-x86-64 hosts)\n"
        "  --jit-compile MODE       sync (compile on the serving "
        "thread, default) or bg (worker thread + atomic install)\n"
        "  --jit-lazy               compile one superblock at a time "
        "on first hot entry instead of whole functions\n"
        "  --profile[=PATH]         tier-attribution profiler: print a "
        "per-tier host-time summary; with PATH also write the full "
        "report (collapsed stacks when PATH ends in .collapsed or "
        ".folded, JSON otherwise)\n"
        "  --jitdump[=PATH]         publish JIT symbols for host "
        "`perf`: /tmp/perf-<pid>.map by default, binary jitdump when "
        "PATH ends in .dump\n");
}

std::string
readHostFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SHIFT_FATAL("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::pair<std::string, std::string>
splitKeyValue(const std::string &arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos)
        SHIFT_FATAL("expected KEY=VALUE, got '%s'", arg.c_str());
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/** Whole-string integer parse; a clear one-line error beats an
 * uncaught std::invalid_argument from a bare std::stoull. */
long long
parseInteger(const std::string &flag, const std::string &text)
{
    try {
        size_t pos = 0;
        long long v = std::stoll(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        SHIFT_FATAL("%s: expected an integer, got '%s'", flag.c_str(),
                    text.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    SessionOptions options;
    std::string sourcePath;
    std::vector<std::pair<std::string, std::string>> files;
    std::vector<std::string> connections;
    bool disasm = false;
    bool dumpStats = false;
    uint64_t traceLimit = 0;
    std::string tracePath;
    std::string profilePath;
    bool jitdump = false;
    std::string jitdumpPath;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    SHIFT_FATAL("missing value after %s", arg.c_str());
                return argv[i];
            };
            if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg == "--policy") {
                options.policy =
                    PolicyConfig::fromConfig(Config::parseFile(next()));
            } else if (arg == "--mode") {
                std::string mode = next();
                if (mode == "none")
                    options.mode = TrackingMode::None;
                else if (mode == "shift")
                    options.mode = TrackingMode::Shift;
                else if (mode == "software")
                    options.mode = TrackingMode::SoftwareDift;
                else
                    SHIFT_FATAL("unknown mode '%s'", mode.c_str());
            } else if (arg == "--granularity") {
                std::string g = next();
                if (g == "byte")
                    options.policy.granularity = Granularity::Byte;
                else if (g == "word")
                    options.policy.granularity = Granularity::Word;
                else
                    SHIFT_FATAL("unknown granularity '%s'", g.c_str());
            } else if (arg == "--enhanced") {
                options.features.natSetClear = true;
                options.features.natAwareCompare = true;
            } else if (arg == "--speculate") {
                options.speculate = true;
            } else if (arg == "--relax-loads") {
                for (const std::string &fn : splitTrim(next(), ','))
                    options.instr.relaxLoadFunctions.insert(fn);
            } else if (arg == "--relax-stores") {
                for (const std::string &fn : splitTrim(next(), ','))
                    options.instr.relaxStoreFunctions.insert(fn);
            } else if (arg == "--file") {
                auto [sim, host] = splitKeyValue(next());
                files.emplace_back(sim, readHostFile(host));
            } else if (arg == "--filetext") {
                files.push_back(splitKeyValue(next()));
            } else if (arg == "--conn") {
                connections.push_back(next());
            } else if (arg == "--disasm") {
                disasm = true;
            } else if (arg == "--stats") {
                dumpStats = true;
            } else if (arg == "--itrace") {
                long long n = parseInteger(arg, next());
                if (n < 0)
                    SHIFT_FATAL("--itrace must not be negative");
                traceLimit = static_cast<uint64_t>(n);
            } else if (arg == "--trace") {
                tracePath = next();
            } else if (arg == "--max-steps") {
                long long n = parseInteger(arg, next());
                if (n <= 0)
                    SHIFT_FATAL("--max-steps must be positive");
                options.maxSteps = static_cast<uint64_t>(n);
            } else if (arg == "--async-taint" ||
                       arg.rfind("--async-taint=", 0) == 0) {
                options.async.enabled = true;
                if (arg.size() > 13) {
                    long long ring =
                        parseInteger("--async-taint", arg.substr(14));
                    if (ring <= 0 || ring > (1 << 24))
                        SHIFT_FATAL("--async-taint: ring size %lld out "
                                    "of range", ring);
                    options.async.ringEvents =
                        static_cast<uint32_t>(ring);
                }
            } else if (arg == "--async-batch") {
                long long batch = parseInteger(arg, next());
                if (batch <= 0)
                    SHIFT_FATAL("--async-batch must be positive");
                options.async.publishBatch =
                    static_cast<uint32_t>(batch);
            } else if (arg == "--async-consumer") {
                std::string mode = next();
                if (mode == "thread")
                    options.async.consumer = dift::AsyncConsumer::Thread;
                else if (mode == "inline")
                    options.async.consumer = dift::AsyncConsumer::Inline;
                else if (mode == "auto")
                    options.async.consumer = dift::AsyncConsumer::Auto;
                else
                    SHIFT_FATAL("--async-consumer: expected thread, "
                                "inline, or auto, got '%s'",
                                mode.c_str());
            } else if (arg == "--jit" || arg.rfind("--jit=", 0) == 0) {
                options.jit = true;
                if (arg.size() > 5) {
                    long long threshold =
                        parseInteger("--jit", arg.substr(6));
                    if (threshold <= 0 || threshold > (1 << 30))
                        SHIFT_FATAL("--jit: promotion threshold %lld "
                                    "out of range", threshold);
                    options.jitThreshold =
                        static_cast<uint32_t>(threshold);
                }
            } else if (arg.rfind("--jit-compile=", 0) == 0 ||
                       arg == "--jit-compile") {
                std::string mode =
                    arg == "--jit-compile" ? next() : arg.substr(14);
                if (mode == "sync")
                    options.jitBackground = false;
                else if (mode == "bg")
                    options.jitBackground = true;
                else
                    SHIFT_FATAL("--jit-compile: expected sync or bg, "
                                "got '%s'", mode.c_str());
            } else if (arg == "--jit-lazy") {
                options.jitLazy = true;
            } else if (arg == "--profile" ||
                       arg.rfind("--profile=", 0) == 0) {
                options.profile = true;
                if (arg.size() > 9) {
                    profilePath = arg.substr(10);
                    if (profilePath.empty())
                        SHIFT_FATAL("--profile=: expected a file path");
                }
            } else if (arg == "--jitdump" ||
                       arg.rfind("--jitdump=", 0) == 0) {
                jitdump = true;
                if (arg.size() > 9) {
                    jitdumpPath = arg.substr(10);
                    if (jitdumpPath.empty())
                        SHIFT_FATAL("--jitdump=: expected a file path");
                }
            } else if (!arg.empty() && arg[0] == '-') {
                SHIFT_FATAL("unknown option '%s'", arg.c_str());
            } else if (sourcePath.empty()) {
                sourcePath = arg;
            } else {
                SHIFT_FATAL("more than one program given");
            }
        }
        if (options.async.enabled) {
            std::string problem =
                dift::validateAsyncOptions(options.async);
            if (!problem.empty())
                SHIFT_FATAL("--async-taint: %s", problem.c_str());
        }
        if (sourcePath.empty()) {
            usage();
            return 103;
        }

        // Enable the flight recorder before the session build so the
        // compile/instrument/decode phases land in the trace too.
        if (!tracePath.empty())
            obs::Recorder::enable();
        // The symbol sink likewise precedes the session: eager JIT
        // compilation during build() must already see it.
        if (jitdump)
            obs::PerfJitSink::enable(jitdumpPath);

        Session session(readHostFile(sourcePath), options);

        if (disasm) {
            for (const Function &fn : session.program().functions) {
                std::printf("%s:\n%s\n", fn.name.c_str(),
                            disassemble(fn.code).c_str());
            }
            return 0;
        }

        for (auto &[sim, contents] : files)
            session.os().addFile(sim, contents);
        for (const std::string &conn : connections)
            session.os().queueConnection(conn);

        uint64_t traced = 0;
        if (traceLimit > 0) {
            session.machine().setTraceHook(
                [&](const Machine &m, const Instr &instr) {
                    if (traced++ >= traceLimit)
                        return;
                    const Function &fn =
                        m.program().functions[m.currentFunction()];
                    // Mark instructions whose sources carry NaT.
                    bool nat = false;
                    forEachUse(instr, [&](uint16_t r) {
                        nat = nat || m.gprNat(r);
                    });
                    std::fprintf(stderr, "%-12s %4llu  %-40s%s\n",
                                 fn.name.c_str(),
                                 static_cast<unsigned long long>(
                                     m.currentPc()),
                                 disassemble(instr).c_str(),
                                 nat ? "  <NaT>" : "");
                });
        }

        RunResult result = session.run();

        std::fputs(session.os().stdoutText().c_str(), stdout);
        for (size_t i = 0; i < session.os().responses().size(); ++i) {
            std::fprintf(stderr, "--- response %zu ---\n%s\n", i,
                         session.os().responses()[i].c_str());
        }
        for (const SecurityAlert &alert : result.alerts) {
            std::fprintf(stderr, "ALERT %s: %s\n", alert.policy.c_str(),
                         alert.message.c_str());
        }
        if (dumpStats) {
            std::fprintf(stderr, "--- stats ---\n%s",
                         result.stats.dump().c_str());
        }
        if (options.profile) {
            std::fprintf(stderr, "%s",
                         obs::renderProfileSummary(result.stats).c_str());
            if (!profilePath.empty())
                obs::writeProfileFile(result.stats, profilePath);
        }
        if (jitdump) {
            std::fprintf(stderr, "jit symbols: %s\n",
                         obs::PerfJitSink::path().c_str());
            obs::PerfJitSink::disable();
        }
        if (obs::Recorder *rec = obs::Recorder::active()) {
            if (!result.provenance.empty()) {
                std::fprintf(
                    stderr, "taint provenance:\n%s",
                    rec->renderChain(result.provenance).c_str());
            }
            rec->writeChromeJsonFile(tracePath);
            obs::Recorder::disable();
        }

        if (result.killedByPolicy) {
            std::fprintf(stderr, "killed by policy\n");
            return 101;
        }
        if (result.fault) {
            std::fprintf(stderr, "fault: %s (%s)\n",
                         faultKindName(result.fault.kind),
                         result.fault.detail.c_str());
            return 102;
        }
        std::fprintf(stderr,
                     "exit %lld  (%llu instructions, %llu cycles)\n",
                     static_cast<long long>(result.exitCode),
                     static_cast<unsigned long long>(
                         result.instructions),
                     static_cast<unsigned long long>(result.cycles));
        return static_cast<int>(result.exitCode & 0xFF);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "shiftc: %s\n", e.what());
        return 103;
    }
}
